//! End-to-end check of the sampled per-transaction lifecycle trace: a
//! detailed simulation with `txn_sample_every` set must produce a trace
//! that the TEL-06 (lifecycle/attribution) and TXN-01 (read/write-set)
//! checkers in `pstore-verify` accept, alongside the existing span and
//! ordering invariants.
//!
//! Only compiled with the `telemetry` feature (the static-analysis gate
//! runs `cargo test -p pstore-sim --features telemetry`); without it the
//! sim emits nothing and there is nothing to replay.
#![cfg(feature = "telemetry")]

use pstore_b2w::generator::WorkloadConfig;
use pstore_core::controller::reactive::{ReactiveConfig, ReactiveController};
use pstore_core::params::SystemParams;
use pstore_sim::detailed::{run_detailed, DetailedSimConfig};
use pstore_telemetry::{kinds, slo, MemorySink};
use pstore_verify::iso;
use pstore_verify::telemetry::{
    check_trace_order, check_trace_spans, check_txn_lifecycle, check_txn_rwsets,
};
use std::rc::Rc;
use std::time::Duration;

/// A small, fast scenario that still migrates: load ramps past the
/// reactive trigger so the controller scales out mid-run, producing
/// chunk moves (and therefore stalls, destination accesses, and
/// restarts) while sampled transactions are in flight.
fn ramp_cfg() -> DetailedSimConfig {
    let mut load: Vec<f64> = (0..120)
        .map(|s| 250.0 + 550.0 * f64::from(s) / 120.0)
        .collect();
    load.extend(vec![800.0; 120]);
    DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load,
        seed: 0xBEEF,
        workload: WorkloadConfig {
            num_skus: 4_000,
            initial_carts: 800,
            ..WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 20_000,
        // Sample roughly one arrival in seven — enough lifecycle traffic
        // to exercise every event kind without bloating the trace.
        txn_sample_every: 7,
        shards: 1,
        shard_spans: false,
        prov_events: false,
    }
}

fn controller() -> ReactiveController {
    ReactiveController::new(ReactiveConfig {
        q: 285.0,
        q_hat: 350.0,
        trigger_fraction: 0.9,
        headroom: 0.2,
        smoothing_window: 2,
        scale_in_patience: 10,
        max_machines: 10,
        initial_machines: 2,
    })
}

/// Run the ramp scenario at a given shard count and capture the full
/// event trace.
fn captured_ramp_run(shards: u32) -> Vec<pstore_telemetry::Event> {
    let mut cfg = ramp_cfg();
    cfg.shards = shards;
    let (sink, handle) = MemorySink::new();
    let _guard = pstore_telemetry::install(Rc::new(sink));
    let mut strat = controller();
    let result = run_detailed(&cfg, &mut strat);
    assert!(
        !result.reconfig_spans.is_empty(),
        "scenario never migrated — the trace would not exercise stalls"
    );
    handle.events()
}

#[test]
fn sampled_txn_trace_satisfies_tel06_and_txn01() {
    let events = captured_ramp_run(1);
    let count = |kind: &str| events.iter().filter(|ev| ev.kind == kind).count();
    let arrivals = count(kinds::TXN_ARRIVE);
    assert!(arrivals > 1_000, "only {arrivals} sampled arrivals");
    // Every sampled arrival resolves (commit, business abort, or timeout
    // abort) and waits in some queue first.
    assert_eq!(count(kinds::TXN_COMMIT) + count(kinds::TXN_ABORT), arrivals);
    assert_eq!(count(kinds::TXN_QUEUE), arrivals);
    // Executed transactions record their read/write sets.
    assert!(count(kinds::TXN_RWSET) > 0, "no rwset events");

    // The trace must pass the full telemetry invariant battery.
    for (name, violations) in [
        ("TEL-01/02", check_trace_spans("txn_trace", &events)),
        ("TEL-04", check_trace_order("txn_trace", &events)),
        ("TEL-06", check_txn_lifecycle("txn_trace", &events)),
        ("TXN-01", check_txn_rwsets("txn_trace", &events)),
    ] {
        assert!(violations.is_empty(), "{name} violations: {violations:?}");
    }

    // And the slo engine must see exactly one run whose attribution
    // includes migration-interference time from the scale-out.
    let runs = slo::analyze(&events);
    assert_eq!(
        runs.len(),
        1,
        "runs: {:?}",
        runs.iter().map(|r| &r.label).collect::<Vec<_>>()
    );
    assert_eq!(runs[0].label, "0:detailed_sim");
    assert!(runs[0].stall_s > 0.0, "no stall time attributed");
}

/// End-to-end key-level trace check: the same fixed-seed reactive
/// scale-out run, at shards 1 and 4, yields sampled key-version
/// histories that pass ISO-01..03 — the sharded engine's commit order
/// is conflict-serializable, reads only observe already-committed
/// versions, and migration restarts leave no orphan versions. At
/// shards=1 the commit order is additionally a valid *serial witness*:
/// every dependency edge points forward, so the single-shard execution
/// literally is the equivalent serial order the checker certifies.
#[test]
fn key_level_histories_pass_iso_checks_at_one_and_four_shards() {
    for shards in [1u32, 4] {
        let events = captured_ramp_run(shards);
        let histories = match iso::histories_of(&events) {
            Ok(h) => h,
            Err(e) => panic!("shards={shards}: undecodable key history: {e}"),
        };
        let stats = iso::dsg_stats(&histories);
        assert!(
            stats.txns > 1_000,
            "shards={shards}: only {} sampled key-level histories",
            stats.txns
        );
        assert!(
            stats.wr + stats.ww + stats.rw > 0,
            "shards={shards}: vacuous history (no dependency edges): {stats:?}"
        );

        let violations = iso::check_key_histories("txn_trace", &histories);
        assert!(violations.is_empty(), "shards={shards}: {violations:?}");

        if shards == 1 {
            let backward = iso::serial_witness_errors(&histories);
            assert!(
                backward.is_empty(),
                "shards=1 commit order is not a serial witness: {backward:?}"
            );
        }
    }
}
