//! Property tests for the simulators: no panics and sane invariants on
//! arbitrary load curves and strategy settings.

#![allow(
    clippy::float_cmp,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)] // tests assert exact values and cast tiny bounded quantities

use proptest::prelude::*;
use pstore_core::controller::baselines::{SimpleController, StaticController};
use pstore_core::controller::forecaster::OracleForecaster;
use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
use pstore_core::params::SystemParams;
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_sim::fast::{run_fast, FastSimConfig};
use std::time::Duration;

fn params(max_machines: u32) -> SystemParams {
    SystemParams {
        q: 285.0,
        q_hat: 350.0,
        d: Duration::from_secs(4646),
        partitions_per_node: 6,
        interval: Duration::from_secs(300),
        max_machines,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast simulator holds its invariants for any load curve under a
    /// static policy: exact cost accounting, allocation never outside
    /// [1, max], shortfall counts bounded by the slot count.
    #[test]
    fn fast_sim_invariants_static(
        load in prop::collection::vec(0.0f64..6_000.0, 10..500),
        machines in 1u32..=10,
    ) {
        let cfg = FastSimConfig {
            params: params(10),
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: true,
            prov_events: false,
        };
        let r = run_fast(&cfg, &load, &mut StaticController::new(machines));
        prop_assert_eq!(r.total_slots, load.len() as u64);
        prop_assert_eq!(r.cost_machine_slots, machines as f64 * load.len() as f64);
        prop_assert!(r.insufficient_slots <= r.total_slots);
        prop_assert_eq!(r.machines_timeline.len(), load.len());
        prop_assert!(r
            .machines_timeline
            .iter()
            .all(|&m| m == machines as f32));
        // Shortfall matches a direct count.
        let direct = load
            .iter()
            .filter(|&&l| l > machines as f64 * 350.0)
            .count() as u64;
        prop_assert_eq!(r.insufficient_slots, direct);
    }

    /// Under any oracle-driven P-Store run, allocation stays within the
    /// hardware bounds and capacity timelines are consistent with the
    /// machine counts.
    #[test]
    fn fast_sim_invariants_pstore(
        seedish in 0u64..1_000,
        peak in 500.0f64..3_400.0,
    ) {
        // A smooth two-day wave whose amplitude is randomised.
        let load: Vec<f64> = (0..2 * 1440)
            .map(|m| {
                let phase = 2.0 * std::f64::consts::PI * (m % 1440) as f64 / 1440.0;
                let base = 0.15 * peak + (0.85 * peak) * (1.0 - phase.cos()) / 2.0;
                base + (seedish % 97) as f64
            })
            .collect();
        let cfg = FastSimConfig {
            params: params(10),
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: true,
            prov_events: false,
        };
        let planner = Planner::new(PlannerConfig {
            q: 285.0,
            d_intervals: 4646.0 / 300.0,
            partitions_per_node: 6,
            max_machines: 10,
        });
        let per_tick: Vec<f64> = load
            .chunks(5)
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        let mut strat = PStoreController::new(
            planner,
            OracleForecaster::new(per_tick),
            PStoreConfig {
                horizon: 48,
                prediction_inflation: 1.1,
                scale_in_confirmations: 3,
                emergency_rate_multiplier: 1.0,
                initial_machines: ((load[0] * 1.2 / 285.0).ceil() as u32).clamp(1, 10),
            },
        );
        let r = run_fast(&cfg, &load, &mut strat);
        prop_assert!(r
            .machines_timeline
            .iter()
            .all(|&m| (1.0..=10.0).contains(&m)));
        // Capacity never exceeds what the allocated machines could provide.
        for (m, c) in r.machines_timeline.iter().zip(&r.capacity_timeline) {
            prop_assert!(*c <= *m * 350.0 + 1.0, "capacity {c} with {m} machines");
        }
        // The wave is servable; the oracle run must be mostly sufficient.
        prop_assert!(
            r.pct_insufficient() < 5.0,
            "{}% short on a servable wave",
            r.pct_insufficient()
        );
    }

    /// The Simple schedule's allocation follows its own calendar exactly
    /// when moves are instantaneous-ish (flat low load, tiny migrations).
    #[test]
    fn fast_sim_simple_schedule_allocation(day_machines in 2u32..=10) {
        let cfg = FastSimConfig {
            params: SystemParams {
                d: Duration::from_secs(60), // near-instant moves
                ..params(10)
            },
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: true,
            prov_events: false,
        };
        let load = vec![100.0; 2 * 1440];
        let mut strat = SimpleController::new(288, 8 * 12, 23 * 12, day_machines, 2);
        let r = run_fast(&cfg, &load, &mut strat);
        // Mid-day slots sit at the day allocation; deep-night at 2.
        let noon = 12 * 60;
        prop_assert_eq!(r.machines_timeline[noon] as u32, day_machines);
        let night = 2 * 60;
        prop_assert_eq!(r.machines_timeline[night] as u32, 2);
    }
}
