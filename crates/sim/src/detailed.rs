//! Discrete-event simulation of the full system: real engine, real B2W
//! transactions, per-partition queueing, chunk-paced live migration, and a
//! provisioning controller in the loop.
//!
//! This is the vehicle for the paper's §8.1–8.2 experiments (Figs 7–11,
//! Table 2). Timing model:
//!
//! * Each partition is a serial FIFO server. A transaction arriving at `t`
//!   starts at `max(t, busy_until)` and occupies the partition for a jittered
//!   service time; its latency is queueing plus service. With the default
//!   calibration (6 partitions/node, ~13.7 ms mean service) a node saturates
//!   near 438 txn/s, reproducing Fig 7 and the paper's `Q̂ = 350` / `Q = 285`.
//! * Live migration streams run one per machine pair, paced so that a
//!   single stream moves data at rate `R = db_bytes / D`. Every chunk
//!   additionally *occupies* the source and destination partitions for a
//!   fraction of its pacing interval — that contention is what makes
//!   reconfiguration under peak load hurt tail latency (Fig 8, Fig 9c) and
//!   emergency `R x 8` migration overload partitions (Fig 11).
//! * Machine-pair streams follow the §4.4.1 round schedule
//!   ([`MigrationSchedule`]), so machines are allocated just-in-time and
//!   the cost accounting matches Algorithm 4.

// The discrete-event simulation quantises continuous time and load into
// slots and byte counts, and panics on broken scenario setup by design.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::expect_used
)]
use crate::latency::{
    average_machines, count_sla_violations, LatencyRecorder, SecondMetrics, SlaViolations,
    SLA_THRESHOLD_S,
};
use pstore_b2w::generator::{WorkloadConfig, WorkloadGenerator};
use pstore_b2w::schema::b2w_catalog;
use pstore_core::controller::{Action, Observation, Strategy};
use pstore_core::params::SystemParams;
use pstore_core::schedule::MigrationSchedule;
use pstore_dbms::cluster::{Cluster, ClusterConfig};
use pstore_dbms::shard::TxnFate;
use pstore_dbms::txn::Procedure;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of a detailed simulation run.
#[derive(Debug, Clone)]
pub struct DetailedSimConfig {
    /// System parameters (`Q`, `Q̂`, `D`, `P`, hardware cap).
    pub params: SystemParams,
    /// Offered load per wall-clock second (txn/s). The run lasts
    /// `load.len()` seconds.
    pub load: Vec<f64>,
    /// RNG seed for arrivals and service jitter.
    pub seed: u64,
    /// Benchmark workload tuning.
    pub workload: WorkloadConfig,
    /// Virtual slot count for the engine.
    pub num_slots: usize,
    /// Controller monitoring cadence in seconds.
    pub monitor_interval_s: f64,
    /// Mean transaction service time per partition (seconds).
    pub service_mean_s: f64,
    /// Uniform jitter applied to service times (0.3 = +-30%).
    pub service_jitter: f64,
    /// Pacing interval of one migration chunk at the non-disruptive rate
    /// (seconds). The paper's 1000 kB chunks at `R ≈ 244 kB/s` pace at
    /// ~4.1 s.
    pub chunk_pacing_s: f64,
    /// Fraction of each involved partition that one migration stream
    /// occupies while transferring at the non-disruptive rate (`R x 1`).
    /// Emergency moves at `R x m` occupy `m` times as much.
    pub migration_cpu_fraction: f64,
    /// Client timeout: an arrival that would wait longer than this in a
    /// partition queue is dropped and observed by the client at this
    /// latency. Models the benchmark driver's bounded outstanding work —
    /// without it an overloaded open-loop system accumulates unbounded
    /// backlog that takes hours to drain, which real drivers never see.
    pub max_queue_delay_s: f64,
    /// Untimed warm-up transactions executed before the clock starts, so
    /// the database reaches its steady-state size (the paper's §4.2
    /// assumes a stable database; a growing one stretches early moves
    /// because the migration rate is calibrated to `D` at start size).
    pub warmup_txns: usize,
    /// Emit the per-transaction lifecycle event family
    /// (`txn_arrive`/`txn_queue`/`txn_stall`/`txn_execute`/`txn_commit`/
    /// `txn_abort`, plus the engine-derived `txn_rwset`/`txn_restart`) for
    /// every Nth arrival. `0` (the default) disables per-txn emission
    /// entirely, keeping the trace event count — and therefore the
    /// committed run goldens — unchanged; the per-second attribution
    /// aggregates on `SecondMetrics` stay on regardless. Sampled events
    /// are all stamped at the arrival's processing time (end times travel
    /// as fields) so TEL-04's monotone-time invariant holds, and they are
    /// emitted at the next pipeline flush in arrival order, so the trace
    /// is identical at every shard count.
    pub txn_sample_every: u64,
    /// Executor shard count for the engine: 1 (the default) runs the
    /// serial inline engine; larger counts spawn one executor thread per
    /// shard ([`Cluster::with_shards`]). Clamped to `partitions_per_node`.
    /// Every simulation output is byte-identical at any shard count.
    pub shards: u32,
    /// Emit one `shard_exec` span per executor shard at the end of the
    /// run (transaction count + busy time), plus `shard.N.*` registry
    /// gauges, so the span profiler can attribute time per shard. Off by
    /// default: the trace then carries no shard-count-dependent records,
    /// which is what keeps runs byte-identical across shard counts.
    pub shard_spans: bool,
    /// Emit the provisioning-observatory event family (`prov_run`,
    /// `prov_interval`, `prov_forecast`, `prov_decision`, `prov_reconfig`,
    /// `prov_chunk`) for this run. Off by default — like `txn_sample_every`,
    /// the gate keeps the default-config trace goldens byte-identical; see
    /// [`prov_events_from_env`].
    pub prov_events: bool,
}

/// Executor shard count from the `PSTORE_SHARDS` environment variable
/// (default 1 — the serial engine). Used by [`DetailedSimConfig::paper_defaults`]
/// and the benchmark binaries so shard count can be swept without code
/// changes.
pub fn shards_from_env() -> u32 {
    std::env::var("PSTORE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map_or(1, |n| n.max(1))
}

/// Provisioning-observatory switch from the `PSTORE_PROV_EVENTS`
/// environment variable (default off). Used by
/// [`DetailedSimConfig::paper_defaults`] and
/// [`FastSimConfig::paper_defaults`](crate::FastSimConfig) so the `prov_*`
/// event family can be enabled without code changes.
pub fn prov_events_from_env() -> bool {
    std::env::var("PSTORE_PROV_EVENTS").is_ok_and(|v| matches!(v.as_str(), "1" | "true" | "on"))
}

impl DetailedSimConfig {
    /// The paper's calibration (§8.1) around a given load curve.
    pub fn paper_defaults(load: Vec<f64>, seed: u64) -> Self {
        DetailedSimConfig {
            params: SystemParams::b2w_paper(),
            load,
            seed,
            workload: WorkloadConfig {
                num_skus: 5_000,
                initial_carts: 1_500,
                ..WorkloadConfig::default()
            },
            num_slots: 7_200,
            monitor_interval_s: 30.0,
            // Slightly faster than 6/438 so that after residual partition
            // skew the *measured* saturation (Fig 7) lands at the paper's
            // 438 txn/s per node.
            service_mean_s: 6.0 / 490.0,
            service_jitter: 0.3,
            chunk_pacing_s: 4.1,
            migration_cpu_fraction: 0.05,
            max_queue_delay_s: 2.0,
            warmup_txns: 150_000,
            txn_sample_every: 0,
            shards: shards_from_env(),
            shard_spans: false,
            prov_events: prov_events_from_env(),
        }
    }
}

/// Result of a detailed simulation run.
#[derive(Debug, Clone)]
pub struct DetailedSimResult {
    /// Name of the controller that produced the run.
    pub strategy: String,
    /// Per-second metrics.
    pub seconds: Vec<SecondMetrics>,
    /// SLA violations per percentile (Table 2).
    pub violations: SlaViolations,
    /// Average machines allocated (Table 2).
    pub avg_machines: f64,
    /// `(start, end)` times of each reconfiguration.
    pub reconfig_spans: Vec<(f64, f64)>,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (business aborts).
    pub aborted: u64,
    /// Arrivals dropped by the client timeout.
    pub dropped: u64,
    /// Per-procedure `(name, committed, aborted)` counts, most-called
    /// first — the realised workload mix (cf. Table 4).
    pub procedure_mix: Vec<(String, u64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Per-second bookkeeping: generate next second's arrivals.
    Second(u64),
    /// Controller monitoring tick.
    Monitor(usize),
    /// A chunk of the (from, to) migration stream.
    Chunk { from: u32, to: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Timed {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A sampled arrival whose lifecycle events are deferred to the next
/// pipeline flush. All timing attribution is computed sim-side at arrival
/// time; only the engine-dependent fields (commit/abort, read/write set,
/// restart flag) wait for the fate, which arrives in submission order.
/// Deferring *all* sampled events — dropped arrivals too — preserves
/// arrival-order interleaving in the trace, which is what makes the
/// telemetry stream byte-identical at every shard count.
#[cfg(feature = "telemetry")]
struct SampledTxn {
    id: u64,
    at: f64,
    slot: u64,
    kind: SampledKind,
}

#[cfg(feature = "telemetry")]
enum SampledKind {
    /// Shed by the client timeout; never executed. `exec` carries the
    /// mean service time the client-side observation assumes.
    Dropped { queue: f64, stall: f64, exec: f64 },
    /// Executed; `idx` is the position of its fate in the next drained
    /// batch (submissions since the last flush).
    Executed {
        idx: usize,
        queue: f64,
        stall: f64,
        service: f64,
        end: f64,
    },
}

/// Drains every outstanding fate (in submission order), folds commit/abort
/// totals, and emits the deferred sampled-transaction events. Called
/// after every event-heap pop — so the engine pipeline never crosses a
/// scheduled event boundary — and once after the loop.
fn flush_pipeline(
    cluster: &mut Cluster,
    fates: &mut Vec<TxnFate>,
    #[cfg(feature = "telemetry")] deferred: &mut Vec<SampledTxn>,
    committed: &mut u64,
    aborted: &mut u64,
) {
    // A window of nothing but dropped arrivals has no fates to drain but
    // may still hold deferred (timeout-abort) events to emit.
    #[cfg(feature = "telemetry")]
    let idle = cluster.pending_fates() == 0 && deferred.is_empty();
    #[cfg(not(feature = "telemetry"))]
    let idle = cluster.pending_fates() == 0;
    if idle {
        return;
    }
    fates.clear();
    cluster.drain_fates_into(fates);
    for fate in fates.iter() {
        if fate.result.is_ok() {
            *committed += 1;
        } else {
            *aborted += 1;
        }
    }
    #[cfg(feature = "telemetry")]
    {
        for s in deferred.iter() {
            pstore_telemetry::set_time(s.at);
            pstore_telemetry::emit(
                pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_ARRIVE)
                    .with("id", s.id)
                    .with("slot", s.slot),
            );
            match s.kind {
                SampledKind::Dropped { queue, stall, exec } => {
                    emit_txn_wait(s.id, queue + stall, stall);
                    pstore_telemetry::emit(
                        pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_ABORT)
                            .with("id", s.id)
                            .with("reason", "timeout")
                            .with("total", queue + exec + stall)
                            .with("queue", queue)
                            .with("exec", exec)
                            .with("stall", stall)
                            .with("end", s.at + queue + exec + stall),
                    );
                }
                SampledKind::Executed {
                    idx,
                    queue,
                    stall,
                    service,
                    end,
                } => {
                    let fate = &fates[idx];
                    let ok = fate.result.is_ok();
                    if fate.touched_dest {
                        // The Squall-style switchover: an access resolved
                        // against the destination means the transaction
                        // was rerouted mid-migration — the engine-level
                        // analogue of a restart-on-moved-data.
                        pstore_telemetry::emit(
                            pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_RESTART)
                                .with("id", s.id)
                                .with("slot", s.slot),
                        );
                    }
                    pstore_telemetry::emit(pstore_dbms::cluster::txn_rwset_event(
                        s.id, s.slot, fate,
                    ));
                    emit_txn_wait(s.id, queue + stall, stall);
                    pstore_telemetry::emit(
                        pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_EXECUTE)
                            .with("id", s.id)
                            .with("service", service),
                    );
                    let terminal = if ok {
                        pstore_telemetry::kinds::TXN_COMMIT
                    } else {
                        pstore_telemetry::kinds::TXN_ABORT
                    };
                    let mut ev = pstore_telemetry::Event::new(terminal)
                        .with("id", s.id)
                        .with("total", queue + service + stall)
                        .with("queue", queue)
                        .with("exec", service)
                        .with("stall", stall)
                        .with("end", end);
                    if !ok {
                        ev = ev.with("reason", "business");
                    }
                    pstore_telemetry::emit(ev);
                }
            }
        }
        deferred.clear();
    }
}

struct ActiveMigration {
    schedule: MigrationSchedule,
    /// Machine pairs per round.
    rounds: Vec<Vec<(u32, u32)>>,
    current_round: usize,
    /// (from, to) -> engine pair index.
    pair_index: HashMap<(u32, u32), usize>,
    /// Streams of the current round still pacing.
    active_streams: usize,
    rate_multiplier: f64,
    /// Byte rate of one stream at multiplier 1 (`db_bytes / D`).
    stream_rate: f64,
    started_at: f64,
    /// Provenance: the `prov_decision` id that requested this move
    /// (0 = unattributed), its endpoints, and running move totals for the
    /// `prov_reconfig` summary emitted when the move completes. Tracked
    /// unconditionally (cheap, and keeps the constructor uniform) but only
    /// read by the telemetry-gated emission sites.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    decision_id: u64,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    from_machines: u32,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    to_machines: u32,
    chunks_moved: u64,
    rows_moved: u64,
    bytes_moved: u64,
    /// Cluster fence-epoch counter when the move began, so the completed
    /// move can report fence epochs crossed (0 on the inline backend).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    fence_base: u64,
}

/// Runs a detailed simulation under the given provisioning strategy.
pub fn run_detailed(cfg: &DetailedSimConfig, strategy: &mut dyn Strategy) -> DetailedSimResult {
    cfg.params.validate();
    assert!(cfg.monitor_interval_s > 0.0, "monitor interval must be > 0");
    let p = cfg.params.partitions_per_node;

    // Root span for the whole run; the sim clock starts at 0 so setup
    // and warm-up events are stamped (at t=0, they take no sim time).
    #[cfg(feature = "telemetry")]
    let run_span = {
        pstore_telemetry::set_time(0.0);
        if pstore_telemetry::enabled() {
            pstore_telemetry::begin_span("detailed_sim", &[])
        } else {
            0
        }
    };

    let mut cluster = Cluster::with_shards(
        b2w_catalog(),
        ClusterConfig {
            partitions_per_node: p,
            num_slots: cfg.num_slots,
        },
        strategy
            .initial_machines()
            .clamp(1, cfg.params.max_machines),
        cfg.shards.clamp(1, p),
    );
    // The provisioning-observatory gate rides the run: prov_* emission in
    // the controllers (via `ProvScorer`) and in this loop is thread-local,
    // so the flag is scoped to the run and restored on exit.
    #[cfg(feature = "telemetry")]
    let prov_was = pstore_telemetry::set_prov_enabled(cfg.prov_events);
    #[cfg(feature = "telemetry")]
    if pstore_telemetry::prov_enabled() {
        pstore_telemetry::emit(
            pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_RUN)
                .with("q", cfg.params.q)
                .with("d_s", cfg.params.d.as_secs_f64())
                .with("interval_s", cfg.monitor_interval_s)
                .with("initial", cluster.active_nodes())
                .with("policy", strategy.name()),
        );
    }
    // Runtime gauges (mailbox depth histograms, fence spans) ride the
    // same opt-in as per-shard spans: both exist to look inside the
    // threaded engine, and both must stay off for byte-stable defaults.
    #[cfg(feature = "telemetry")]
    if cfg.shard_spans && pstore_telemetry::enabled() {
        cluster.set_runtime_gauges(true);
    }
    // Key-level version tracking rides the sampling switch: goldens run
    // with `txn_sample_every = 0` and keep the engine version-free (and
    // their traces byte-stable); sampled runs get per-key version
    // histories so the ISO-01..03 serializability checkers have real
    // WR/WW/RW evidence to work with.
    #[cfg(feature = "telemetry")]
    if cfg.txn_sample_every > 0 && pstore_telemetry::enabled() {
        cluster.set_track_versions(true);
    }
    let mut gen = WorkloadGenerator::new(cfg.workload.clone());
    // Fate scratch buffer for the submit/drain pipeline (reused between
    // flushes so the steady state allocates nothing).
    let mut fates: Vec<TxnFate> = Vec::new();
    #[cfg(feature = "telemetry")]
    let warmup_span = if pstore_telemetry::enabled() {
        pstore_telemetry::begin_span("warmup", &[])
    } else {
        0
    };
    for proc in gen.seed_stock_procedures() {
        let slot = cluster.slot_of_routing(&proc.routing_key());
        cluster.submit(proc, slot);
    }
    cluster.drain_fates_into(&mut fates);
    assert!(
        fates.iter().all(|f| f.result.is_ok()),
        "stock seeding failed"
    );
    fates.clear();
    for txn in gen.initial_load() {
        let slot = cluster.slot_of_routing(&txn.routing_key());
        cluster.submit(txn, slot);
    }
    cluster.drain_fates_into(&mut fates);
    assert!(
        fates.iter().all(|f| f.result.is_ok()),
        "initial cart load failed"
    );
    fates.clear();
    // Untimed warm-up: run the generator until carts/checkouts/stock-txn
    // populations reach steady state so the database size is stable.
    // Pipelined: shards execute concurrently while the generator keeps
    // producing; fates are discarded in batches.
    for _ in 0..cfg.warmup_txns {
        let txn = gen.next_txn();
        let slot = cluster.slot_of_routing(&txn.routing_key());
        cluster.submit(txn, slot);
        if cluster.pending_fates() >= 4096 {
            fates.clear();
            cluster.drain_fates_into(&mut fates);
        }
    }
    fates.clear();
    cluster.drain_fates_into(&mut fates);
    fates.clear();
    #[cfg(feature = "telemetry")]
    pstore_telemetry::end_span("warmup", warmup_span, &[]);

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD15C);
    let mut busy = vec![vec![0.0f64; p as usize]; cfg.params.max_machines as usize];
    // Latency-attribution state, parallel to `busy`. `mig_backlog` is the
    // outstanding chunk-burst service time injected into each partition;
    // `stall_frontier` is the partition's busy-until as of the last burst.
    // An arrival inside the frontier window has up to `mig_backlog` of its
    // wait attributed to migration interference; once a partition drains
    // past its frontier the backlog resets — later waits are pure queueing.
    let mut mig_backlog = vec![vec![0.0f64; p as usize]; cfg.params.max_machines as usize];
    let mut stall_frontier = vec![vec![0.0f64; p as usize]; cfg.params.max_machines as usize];
    // Arrival ordinal, doubling as the sampled per-txn trace id.
    #[cfg(feature = "telemetry")]
    let mut arrival_seq = 0u64;
    let mut recorder = LatencyRecorder::new();
    recorder.set_machines(cluster.active_nodes() as f64);

    let mut heap: BinaryHeap<Reverse<Timed>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<Timed>>, seq: &mut u64, time: f64, event: Event| {
        *seq += 1;
        heap.push(Reverse(Timed {
            time,
            seq: *seq,
            event,
        }));
    };

    push(&mut heap, &mut seq, 0.0, Event::Second(0));
    push(&mut heap, &mut seq, 0.0, Event::Monitor(0));

    let horizon = cfg.load.len() as f64;
    let mut migration: Option<ActiveMigration> = None;
    let mut reconfig_spans: Vec<(f64, f64)> = Vec::new();
    let mut arrivals_in_window = 0u64;
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut dropped = 0u64;
    // The current second's arrival times, sorted ascending, drained by
    // cursor. Arrivals vastly outnumber every other event, so keeping them
    // out of the heap turns n pushes and n pops of `O(log heap)` each into
    // one sort of an already-allocated buffer per second. A stable sort
    // preserves generation order on (measure-zero) exact-time ties, which
    // is what the old per-arrival heap seq numbers did.
    let mut arrivals: Vec<f64> = Vec::new();
    let mut next_arrival = 0usize;
    // Sampled arrivals awaiting their fates; emitted at the next flush.
    #[cfg(feature = "telemetry")]
    let mut deferred: Vec<SampledTxn> = Vec::new();
    // Submissions since the last flush — the index a deferred sampled
    // arrival uses to find its fate in the drained batch.
    #[cfg(feature = "telemetry")]
    let mut submitted_since_flush = 0usize;

    loop {
        // Arrivals due before the next scheduled event run first; ties go
        // to the heap event (arrival times are strictly inside a second,
        // so they can never tie with the integer-timed Second events that
        // bound their window).
        if let Some(&at) = arrivals.get(next_arrival) {
            if heap.peek().is_none_or(|r| at < r.0.time) {
                next_arrival += 1;
                arrivals_in_window += 1;
                #[cfg(feature = "telemetry")]
                {
                    arrival_seq += 1;
                }
                let txn = gen.next_txn();
                // Resolve the routing slot once; submit reuses it instead
                // of re-hashing the routing key.
                let slot = cluster.slot_of_routing(&txn.routing_key());
                let (node, local) = cluster.partition_of_slot(slot);
                let (n, l) = (node as usize, local as usize);
                let wait = (busy[n][l] - at).max(0.0);
                // Migration-interference share of the wait (see the state
                // comments above): bounded by the wait itself, by the
                // outstanding burst backlog, and by the remaining frontier
                // window.
                let frontier = stall_frontier[n][l];
                let backlog = if at >= frontier {
                    mig_backlog[n][l] = 0.0;
                    0.0
                } else {
                    mig_backlog[n][l]
                };
                let stall_cap = backlog.min((frontier - at).max(0.0));
                #[cfg(feature = "telemetry")]
                let sampled = cfg.txn_sample_every > 0
                    && arrival_seq.is_multiple_of(cfg.txn_sample_every)
                    && pstore_telemetry::enabled();
                if wait > cfg.max_queue_delay_s {
                    // Client timeout: the request is shed, observed at the
                    // timeout latency, and never executes.
                    dropped += 1;
                    let stall = cfg.max_queue_delay_s.min(stall_cap);
                    let queue = cfg.max_queue_delay_s - stall;
                    recorder.record_attributed(at, queue, cfg.service_mean_s, stall);
                    #[cfg(feature = "telemetry")]
                    if sampled {
                        deferred.push(SampledTxn {
                            id: arrival_seq,
                            at,
                            slot,
                            kind: SampledKind::Dropped {
                                queue,
                                stall,
                                exec: cfg.service_mean_s,
                            },
                        });
                    }
                    continue;
                }
                // Ship the transaction to its slot's shard; the fate comes
                // back (in submission order) at the next flush. All timing
                // is decided here, sim-side, so the RNG draw sequence is
                // independent of shard count. Sampled transactions carry a
                // trace tag so the engine captures their key-level
                // read/write sets into the fate.
                #[cfg(feature = "telemetry")]
                if sampled {
                    cluster.set_txn_trace_id(arrival_seq);
                }
                cluster.submit(txn, slot);
                #[cfg(feature = "telemetry")]
                {
                    submitted_since_flush += 1;
                }
                let service = cfg.service_mean_s
                    * (1.0 + rng.random_range(-cfg.service_jitter..cfg.service_jitter));
                let b = &mut busy[n][l];
                let start = b.max(at);
                *b = start + service;
                let stall = wait.min(stall_cap);
                let queue = wait - stall;
                recorder.record_attributed(at, queue, service, stall);
                #[cfg(feature = "telemetry")]
                if sampled {
                    deferred.push(SampledTxn {
                        id: arrival_seq,
                        at,
                        slot,
                        kind: SampledKind::Executed {
                            idx: submitted_since_flush - 1,
                            queue,
                            stall,
                            service,
                            end: *b,
                        },
                    });
                }
                continue;
            }
        }
        let Some(Reverse(Timed { time, event, .. })) = heap.pop() else {
            break;
        };
        // Settle the engine pipeline before handling any scheduled event:
        // monitor ticks read partition reports, chunk events migrate, and
        // the deferred sampled events must precede anything stamped at
        // `time` (their arrival times are all earlier — TEL-04).
        flush_pipeline(
            &mut cluster,
            &mut fates,
            #[cfg(feature = "telemetry")]
            &mut deferred,
            &mut committed,
            &mut aborted,
        );
        #[cfg(feature = "telemetry")]
        {
            submitted_since_flush = 0;
        }
        if time >= horizon && heap.is_empty() {
            break;
        }
        // Stamp telemetry events with simulation time rather than wall time.
        #[cfg(feature = "telemetry")]
        pstore_telemetry::set_time(time);
        match event {
            Event::Second(s) => {
                recorder.advance_to(time);
                if (s as f64) < horizon {
                    // Generate this second's Poisson arrivals into the
                    // reused buffer (the previous second's are always fully
                    // drained: they are strictly earlier than this event).
                    debug_assert_eq!(next_arrival, arrivals.len());
                    let lambda = cfg.load[s as usize].max(0.0);
                    let n = sample_poisson(&mut rng, lambda);
                    arrivals.clear();
                    next_arrival = 0;
                    for _ in 0..n {
                        arrivals.push(time + rng.random_range(0.0..1.0));
                    }
                    arrivals.sort_by(f64::total_cmp);
                    push(&mut heap, &mut seq, time + 1.0, Event::Second(s + 1));
                }
            }
            Event::Monitor(k) => {
                recorder.advance_to(time);
                let window = cfg.monitor_interval_s;
                let measured = arrivals_in_window as f64 / window;
                arrivals_in_window = 0;
                // Each monitor tick also samples the §8.1 uniformity
                // figures (Table 2's companion analysis): access and data
                // skew land in the metrics registry as gauges and in the
                // trace as `skew_sample` events.
                #[cfg(feature = "telemetry")]
                record_skew_sample(&cluster);
                #[cfg(feature = "telemetry")]
                if pstore_telemetry::prov_enabled() {
                    pstore_telemetry::emit(
                        pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_INTERVAL)
                            .with("interval", k)
                            .with("observed", measured)
                            .with("machines", cluster.active_nodes())
                            .with("reconfiguring", migration.is_some()),
                    );
                }
                let obs = Observation {
                    interval: k,
                    load: measured,
                    machines: cluster.active_nodes(),
                    reconfiguring: migration.is_some(),
                };
                // The tick span closes before any reconfiguration span
                // opens in `start_migration`, keeping spans LIFO-nested.
                #[cfg(feature = "telemetry")]
                let tick_span = if pstore_telemetry::enabled() {
                    pstore_telemetry::begin_span("tick", &[])
                } else {
                    0
                };
                let action = strategy.tick(&obs);
                #[cfg(feature = "telemetry")]
                pstore_telemetry::end_span("tick", tick_span, &[]);
                if let Action::Reconfigure(req) = action {
                    if migration.is_none() && req.target != cluster.active_nodes() {
                        let target = req.target.clamp(1, cfg.params.max_machines);
                        if target != cluster.active_nodes() {
                            migration = Some(start_migration(
                                &mut cluster,
                                target,
                                req.rate_multiplier,
                                req.decision_id,
                                cfg,
                                time,
                                &mut heap,
                                &mut seq,
                            ));
                            recorder.set_reconfiguring(true);
                            if let Some(m) = &migration {
                                recorder.set_machines(m.schedule.machines_in_round(0) as f64);
                            }
                        }
                    }
                }
                if time + window < horizon {
                    push(&mut heap, &mut seq, time + window, Event::Monitor(k + 1));
                }
            }
            Event::Chunk { from, to } => {
                let Some(m) = migration.as_mut() else {
                    continue;
                };
                // A chunk is a byte budget; it may span several (possibly
                // empty) slots of this pair's stream. Pacing and occupancy
                // are proportional to the bytes actually carried, so the
                // whole move takes T(B, A) regardless of slot sizes.
                let chunk_bytes = (m.stream_rate * cfg.chunk_pacing_s).max(1.0) as usize;
                let mut moved = 0usize;
                let mut moved_rows = 0usize;
                let mut pair_done;
                let mut reconfig_done = false;
                if let Some(&pair_idx) = m.pair_index.get(&(from, to)) {
                    let mut remaining = chunk_bytes;
                    loop {
                        let result = cluster
                            .migrate_chunk(pair_idx, remaining.max(1))
                            .expect("migration running");
                        moved += result.bytes;
                        moved_rows += result.rows;
                        reconfig_done = result.reconfig_done;
                        pair_done = result.pair_done;
                        if pair_done || reconfig_done {
                            break;
                        }
                        if result.bytes >= remaining || !result.slot_completed {
                            break; // budget consumed mid-slot
                        }
                        remaining -= result.bytes;
                    }
                } else {
                    // The engine had no slots for this schedule pair.
                    pair_done = true;
                }
                if moved > 0 {
                    m.chunks_moved += 1;
                    m.rows_moved += moved_rows as u64;
                    m.bytes_moved += moved as u64;
                    #[cfg(feature = "telemetry")]
                    if pstore_telemetry::prov_enabled() {
                        pstore_telemetry::emit(
                            pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_CHUNK)
                                .with("id", m.decision_id)
                                .with("from", from)
                                .with("to", to)
                                .with("bytes", moved),
                        );
                    }
                }

                // Partition occupancy on both sides: a machine-pair
                // transfer runs P parallel partition streams, so every
                // partition of both endpoints carries the per-stream
                // overhead, proportional to the data carried.
                let fill = (moved as f64 / chunk_bytes as f64).min(1.0);
                let burst = cfg.migration_cpu_fraction * cfg.chunk_pacing_s * fill;
                if burst > 0.0 {
                    for node in [from, to] {
                        let n = node as usize;
                        for (local, part) in busy[n].iter_mut().enumerate() {
                            *part = part.max(time) + burst;
                            // Arrivals landing before the new frontier see
                            // this burst as migration stall, not queueing.
                            mig_backlog[n][local] += burst;
                            stall_frontier[n][local] = *part;
                        }
                    }
                }

                if reconfig_done {
                    let started = m.started_at;
                    reconfig_spans.push((started, time));
                    #[cfg(feature = "telemetry")]
                    if pstore_telemetry::prov_enabled() {
                        pstore_telemetry::emit(
                            pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_RECONFIG)
                                .with("id", m.decision_id)
                                .with("from", m.from_machines)
                                .with("to", m.to_machines)
                                .with("start", started)
                                .with("duration_s", time - started)
                                .with("chunks", m.chunks_moved)
                                .with("rows", m.rows_moved)
                                .with("bytes", m.bytes_moved)
                                .with("fences", cluster.fence_epochs() - m.fence_base),
                        );
                    }
                    migration = None;
                    recorder.set_reconfiguring(false);
                    recorder.set_machines(cluster.active_nodes() as f64);
                } else if pair_done {
                    m.active_streams -= 1;
                    if m.active_streams == 0 {
                        // Advance to the next round with live pairs.
                        advance_round(m, &cluster, time, &mut heap, &mut seq);
                        recorder.set_machines(
                            m.schedule.machines_in_round(
                                m.current_round
                                    .min(m.schedule.total_rounds().saturating_sub(1)),
                            ) as f64,
                        );
                    }
                } else {
                    // Pace the next chunk proportionally to what was moved.
                    let frac = fill.max(0.05);
                    let next = time + cfg.chunk_pacing_s * frac / m.rate_multiplier;
                    push(&mut heap, &mut seq, next, Event::Chunk { from, to });
                }
            }
        }
    }

    // Settle whatever the final partial window left in flight.
    flush_pipeline(
        &mut cluster,
        &mut fates,
        #[cfg(feature = "telemetry")]
        &mut deferred,
        &mut committed,
        &mut aborted,
    );
    // A migration still in flight when the run ends would leave the
    // engine's reconfig span dangling (TEL-01) and the root close below
    // out of LIFO order (TEL-02); close it explicitly, marked truncated.
    if migration.is_some() {
        cluster.end_truncated_reconfig_span();
    }
    // Per-shard execution attribution (opt-in): one zero-length
    // `shard_exec` span per shard carrying its transaction count and busy
    // wall time, plus `shard.N.*` registry gauges, so the span profiler
    // can attribute engine time per executor thread. Gated behind
    // `shard_spans` because the record count would otherwise vary with
    // shard count and break cross-shard byte-identity.
    #[cfg(feature = "telemetry")]
    if cfg.shard_spans && pstore_telemetry::enabled() {
        for (i, rep) in cluster.shard_reports().iter().enumerate() {
            let span = pstore_telemetry::begin_span(
                "shard_exec",
                &[("shard", pstore_telemetry::Value::from(i as u64))],
            );
            pstore_telemetry::end_span(
                "shard_exec",
                span,
                &[
                    ("txns", pstore_telemetry::Value::from(rep.txns)),
                    ("busy_us", pstore_telemetry::Value::from(rep.busy_us)),
                ],
            );
            pstore_telemetry::with_registry(|reg| {
                #[allow(clippy::cast_precision_loss)] // counters far below 2^53
                {
                    reg.set_gauge(&format!("shard.{i}.txns"), rep.txns as f64);
                    reg.set_gauge(&format!("shard.{i}.busy_us"), rep.busy_us as f64);
                }
            });
        }
    }
    // Flush the recorder's trailing seconds before the root span closes,
    // so their `second` events land inside the run and trace analyses
    // (`pstore-trace slo`) attribute them to it rather than to a phantom
    // between-runs segment.
    let seconds = recorder.finish();
    #[cfg(feature = "telemetry")]
    pstore_telemetry::end_span("detailed_sim", run_span, &[]);
    #[cfg(feature = "telemetry")]
    pstore_telemetry::set_prov_enabled(prov_was);
    let violations = count_sla_violations(&seconds, SLA_THRESHOLD_S);
    let avg_machines = average_machines(&seconds);
    let procedure_mix = cluster
        .procedure_report()
        .into_iter()
        .map(|(name, c, a)| (name.to_string(), c, a))
        .collect();
    DetailedSimResult {
        strategy: strategy.name().to_string(),
        seconds,
        violations,
        avg_machines,
        reconfig_spans,
        committed,
        aborted,
        dropped,
        procedure_mix,
    }
}

/// Emits the wait portion of a sampled transaction's lifecycle: one
/// `txn_queue` event (total wait and its migration-stall share) plus a
/// `txn_stall` event when migration interference contributed at all.
#[cfg(feature = "telemetry")]
fn emit_txn_wait(id: u64, wait: f64, stall: f64) {
    pstore_telemetry::emit(
        pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_QUEUE)
            .with("id", id)
            .with("wait", wait)
            .with("stall", stall),
    );
    if stall > 0.0 {
        pstore_telemetry::emit(
            pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_STALL)
                .with("id", id)
                .with("stall", stall),
        );
    }
}

/// Records access- and data-skew summaries over the cluster's partitions
/// into the telemetry registry (gauges under `skew.access.*` /
/// `skew.data.*`) and emits one `skew_sample` event per quantity.
#[cfg(feature = "telemetry")]
fn record_skew_sample(cluster: &Cluster) {
    use pstore_dbms::stats::SkewSummary;
    if !pstore_telemetry::enabled() {
        return;
    }
    let report = cluster.partition_report();
    #[allow(clippy::cast_precision_loss)] // access/byte counts are far below 2^53
    let access: Vec<f64> = report.iter().map(|r| r.2 as f64).collect();
    #[allow(clippy::cast_precision_loss)]
    let data: Vec<f64> = report.iter().map(|r| r.3 as f64).collect();
    for (prefix, values) in [("skew.access", &access), ("skew.data", &data)] {
        let Some(summary) = SkewSummary::from_values(values) else {
            continue;
        };
        pstore_telemetry::with_registry(|reg| {
            for (name, value) in summary.gauge_entries(prefix) {
                reg.set_gauge(&name, value);
            }
        });
        pstore_telemetry::emit(
            pstore_telemetry::Event::new(pstore_telemetry::kinds::SKEW_SAMPLE)
                .with("metric", prefix)
                .with("partitions", summary.partitions)
                .with("max_over_mean", summary.max_over_mean)
                .with("stddev_over_mean", summary.stddev_over_mean),
        );
    }
}

/// Initialises engine + schedule state for a reconfiguration and schedules
/// the first round's chunk events.
#[allow(clippy::too_many_arguments)] // one-shot constructor threading sim state
fn start_migration(
    cluster: &mut Cluster,
    target: u32,
    rate_multiplier: f64,
    decision_id: u64,
    cfg: &DetailedSimConfig,
    now: f64,
    heap: &mut BinaryHeap<Reverse<Timed>>,
    seq: &mut u64,
) -> ActiveMigration {
    let before = cluster.active_nodes();
    // Captured before the reconfiguration installs, so barrier fences of
    // the move itself are counted in its `prov_reconfig` summary.
    let fence_base = cluster.fence_epochs();
    let db_bytes = cluster.total_bytes() as f64;
    cluster
        .begin_reconfiguration(target)
        .expect("reconfiguration accepted");
    let schedule = MigrationSchedule::plan(before, target);
    let rounds: Vec<Vec<(u32, u32)>> = schedule
        .rounds()
        .iter()
        .map(|r| r.transfers.iter().map(|t| (t.from, t.to)).collect())
        .collect();
    let pair_index: HashMap<(u32, u32), usize> = cluster
        .pair_transfers()
        .iter()
        .enumerate()
        .map(|(i, p)| ((p.from, p.to), i))
        .collect();
    let mut m = ActiveMigration {
        schedule,
        rounds,
        current_round: 0,
        pair_index,
        active_streams: 0,
        rate_multiplier: rate_multiplier.max(0.1),
        // A machine-pair stream is P parallel partition streams, each at
        // the single-thread rate db / D (Equation 3's accounting).
        stream_rate: cfg.params.partitions_per_node as f64 * db_bytes / cfg.params.d.as_secs_f64(),
        started_at: now,
        decision_id,
        from_machines: before,
        to_machines: target,
        chunks_moved: 0,
        rows_moved: 0,
        bytes_moved: 0,
        fence_base,
    };
    // Start round 0 (skipping over rounds whose pairs have no slots).
    m.current_round = usize::MAX; // advance_round starts at 0
    advance_round(&mut m, cluster, now, heap, seq);
    m
}

/// Starts the next round that has at least one live pair. Returns with
/// `active_streams > 0` unless every remaining round is empty (in which
/// case the engine must already have committed — the caller's next chunk
/// event resolves it).
fn advance_round(
    m: &mut ActiveMigration,
    cluster: &Cluster,
    now: f64,
    heap: &mut BinaryHeap<Reverse<Timed>>,
    seq: &mut u64,
) {
    loop {
        m.current_round = m.current_round.wrapping_add(1);
        let Some(round) = m.rounds.get(m.current_round) else {
            return;
        };
        let mut started = 0usize;
        for &(from, to) in round {
            let live = m
                .pair_index
                .get(&(from, to))
                .map(|&i| !cluster.pair_transfers()[i].is_done())
                .unwrap_or(false);
            if live {
                started += 1;
                *seq += 1;
                heap.push(Reverse(Timed {
                    time: now,
                    seq: *seq,
                    event: Event::Chunk { from, to },
                }));
            }
        }
        if started > 0 {
            m.active_streams = started;
            return;
        }
    }
}

/// Poisson sample: exact (Knuth) for small rates, normal approximation for
/// large ones.
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = 1.0;
        loop {
            prod *= rng.random_range(0.0..1.0f64);
            if prod <= l {
                return k;
            }
            k += 1;
            if k > 1000 {
                return k; // numerical guard
            }
        }
    }
    // Box-Muller normal approximation.
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (lambda + lambda.sqrt() * z).round().max(0.0) as u64
}

/// Averages a per-second load curve into controller-interval buckets
/// (useful for building oracle forecasters aligned with monitor ticks).
pub fn per_interval_load(load_per_s: &[f64], interval_s: f64) -> Vec<f64> {
    assert!(interval_s >= 1.0, "interval must be at least one second");
    let step = interval_s as usize;
    load_per_s
        .chunks(step)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;
    use pstore_core::controller::baselines::StaticController;
    use pstore_core::controller::forecaster::OracleForecaster;
    use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
    use pstore_core::controller::reactive::{ReactiveConfig, ReactiveController};
    use pstore_core::planner::{Planner, PlannerConfig};
    use std::time::Duration;

    /// A small, fast test setup: tiny database, short run.
    fn test_cfg(load: Vec<f64>, seed: u64) -> DetailedSimConfig {
        DetailedSimConfig {
            params: SystemParams {
                q: 285.0,
                q_hat: 350.0,
                d: Duration::from_secs(300),
                partitions_per_node: 6,
                interval: Duration::from_secs(30),
                max_machines: 10,
            },
            load,
            seed,
            workload: WorkloadConfig {
                num_skus: 4_000,
                initial_carts: 800,
                ..WorkloadConfig::default()
            },
            num_slots: 360,
            monitor_interval_s: 30.0,
            // Matches paper_defaults' calibration (see that constant).
            service_mean_s: 6.0 / 490.0,
            service_jitter: 0.3,
            chunk_pacing_s: 2.0,
            migration_cpu_fraction: 0.05,
            max_queue_delay_s: 2.0,
            warmup_txns: 20_000,
            txn_sample_every: 0,
            shards: 1,
            shard_spans: false,
            prov_events: false,
        }
    }

    #[test]
    fn static_cluster_handles_moderate_load_with_low_latency() {
        let cfg = test_cfg(vec![400.0; 120], 1);
        let mut strat = StaticController::new(4);
        let r = run_detailed(&cfg, &mut strat);
        assert!(r.seconds.len() >= 120);
        assert!(r.committed > 30_000, "committed {}", r.committed);
        assert_eq!(r.violations.p99, 0, "violations: {:?}", r.violations);
        assert_eq!(r.avg_machines, 4.0);
        assert!(r.reconfig_spans.is_empty());
    }

    #[test]
    fn overloaded_node_violates_sla() {
        // 600 txn/s on one node (saturation ~438): queues must blow up.
        let cfg = test_cfg(vec![600.0; 90], 2);
        let mut strat = StaticController::new(1);
        let r = run_detailed(&cfg, &mut strat);
        assert!(
            r.violations.p99 > 20,
            "expected saturation violations, got {:?}",
            r.violations
        );
    }

    #[test]
    fn saturation_point_matches_calibration() {
        // Ramp load on a single node; find where p99 departs: should be in
        // the neighbourhood of 438 txn/s (Fig 7).
        let load: Vec<f64> = (0..200).map(|s| 100.0 + 3.0 * s as f64).collect();
        let cfg = test_cfg(load.clone(), 3);
        let mut strat = StaticController::new(1);
        let r = run_detailed(&cfg, &mut strat);
        // Find the first second where p99 exceeds 500 ms persistently.
        let mut first_bad = None;
        for w in r.seconds.windows(5) {
            if w.iter().all(|s| s.p99 > SLA_THRESHOLD_S) {
                first_bad = Some(w[0].second);
                break;
            }
        }
        let sec = first_bad.expect("ramp should eventually saturate") as f64;
        let rate_at_break = 100.0 + 3.0 * sec;
        assert!(
            (380.0..520.0).contains(&rate_at_break),
            "saturation at {rate_at_break} txn/s"
        );
    }

    #[test]
    fn reactive_controller_scales_out_under_load() {
        // Ramp from 250 to 800 txn/s over two minutes, then hold. The
        // reactive policy only acts once load crosses 0.9 * Q̂ * machines,
        // i.e. while the cluster is already under pressure.
        let mut load: Vec<f64> = (0..120).map(|s| 250.0 + 550.0 * s as f64 / 120.0).collect();
        load.extend(vec![800.0; 240]);
        let cfg = test_cfg(load, 4);
        let mut strat = ReactiveController::new(ReactiveConfig {
            q: 285.0,
            q_hat: 350.0,
            trigger_fraction: 0.9,
            headroom: 0.2,
            smoothing_window: 2,
            scale_in_patience: 10,
            max_machines: 10,
            initial_machines: 2,
        });
        let r = run_detailed(&cfg, &mut strat);
        assert!(
            !r.reconfig_spans.is_empty(),
            "reactive controller never reconfigured"
        );
        // It must not have acted before the load approached the trigger
        // (that is the defining weakness of reactive provisioning).
        assert!(r.reconfig_spans[0].0 >= 60.0, "acted too early");
        let final_machines = r.seconds.last().unwrap().machines;
        assert!(final_machines >= 3.0, "ended at {final_machines} machines");
        // After scale-out completes, the tail of the run should be clean.
        let tail = &r.seconds[r.seconds.len() - 60..];
        let tail_bad = tail.iter().filter(|s| s.p99 > SLA_THRESHOLD_S).count();
        assert!(tail_bad < 10, "tail still violating: {tail_bad}");
    }

    #[test]
    fn pstore_with_oracle_scales_before_the_rise() {
        let mut load = vec![250.0; 120];
        load.extend(vec![800.0; 180]);
        let cfg = test_cfg(load.clone(), 5);
        let per_interval = per_interval_load(&cfg.load, cfg.monitor_interval_s);
        let planner = Planner::new(PlannerConfig {
            q: 285.0,
            d_intervals: 300.0 / 30.0,
            partitions_per_node: 6,
            max_machines: 10,
        });
        let mut strat = PStoreController::new(
            planner,
            OracleForecaster::new(per_interval),
            PStoreConfig {
                horizon: 10,
                prediction_inflation: 1.0,
                scale_in_confirmations: 3,
                emergency_rate_multiplier: 1.0,
                initial_machines: 1,
            },
        );
        let r = run_detailed(&cfg, &mut strat);
        assert!(!r.reconfig_spans.is_empty(), "P-Store never reconfigured");
        // The first reconfiguration must start before the load rise at
        // t = 120 s.
        let (start, _) = r.reconfig_spans[0];
        assert!(start < 120.0, "reconfigured too late: {start}");
        // Violations should be few (prediction leaves headroom).
        assert!(
            r.violations.p99 < 15,
            "too many violations: {:?}",
            r.violations
        );
    }

    #[test]
    fn migration_at_accelerated_rate_hurts_latency_more() {
        // Run the same forced mid-load reconfiguration at rate 1 and rate 8
        // and compare p99 violations during the move (Fig 11's trade-off:
        // higher rate = worse transient latency, faster completion).
        struct ForcedMove {
            at_tick: usize,
            target: u32,
            rate: f64,
            issued: bool,
        }
        impl Strategy for ForcedMove {
            fn tick(&mut self, obs: &Observation) -> Action {
                if !self.issued && obs.interval >= self.at_tick && !obs.reconfiguring {
                    self.issued = true;
                    return Action::Reconfigure(pstore_core::controller::ReconfigRequest {
                        target: self.target,
                        rate_multiplier: self.rate,
                        reason: pstore_core::controller::ReconfigReason::Emergency,
                        decision_id: 0,
                    });
                }
                Action::None
            }
            fn name(&self) -> &str {
                "forced"
            }
            fn initial_machines(&self) -> u32 {
                2
            }
        }

        let load = vec![650.0; 240]; // near Q̂ for 2 nodes
        let run = |rate: f64, seed: u64| {
            let cfg = test_cfg(load.clone(), seed);
            let mut strat = ForcedMove {
                at_tick: 1,
                target: 4,
                rate,
                issued: false,
            };
            run_detailed(&cfg, &mut strat)
        };
        let slow = run(1.0, 10);
        let fast = run(8.0, 10);
        // The accelerated move must complete sooner.
        let slow_dur = slow.reconfig_spans[0].1 - slow.reconfig_spans[0].0;
        let fast_dur = fast.reconfig_spans[0].1 - fast.reconfig_spans[0].0;
        assert!(
            fast_dur < slow_dur * 0.5,
            "fast {fast_dur} vs slow {slow_dur}"
        );
        // And the transient latency hit during the fast move is larger
        // (Fig 11: migration at 8R overloads the partitions it touches).
        let move_peak = |r: &DetailedSimResult| {
            let (s, e) = r.reconfig_spans[0];
            r.seconds
                .iter()
                .filter(|x| (x.second as f64) >= s && (x.second as f64) <= e + 5.0)
                .map(|x| x.p99)
                .fold(0.0f64, f64::max)
        };
        assert!(
            move_peak(&fast) > move_peak(&slow),
            "fast move peak {} vs slow move peak {}",
            move_peak(&fast),
            move_peak(&slow)
        );
    }

    #[test]
    fn attribution_identity_holds_every_second() {
        // queue + exec + stall must equal the recorded total latency — the
        // TEL-06 identity, at per-second aggregate granularity.
        let cfg = test_cfg(vec![400.0; 90], 11);
        let r = run_detailed(&cfg, &mut StaticController::new(2));
        for s in &r.seconds {
            let recorded = s.mean * s.throughput as f64;
            assert!(
                (s.attr_total - recorded).abs() < 1e-6 * recorded.max(1.0),
                "second {}: attr_total {} vs mean*n {}",
                s.second,
                s.attr_total,
                recorded
            );
            assert!(
                (s.attr_queue + s.attr_exec + s.attr_stall - s.attr_total).abs() < 1e-9,
                "second {}: components do not sum",
                s.second
            );
        }
    }

    #[test]
    fn stall_is_zero_without_migration_and_positive_during_one() {
        // No reconfiguration → no migration interference anywhere.
        let quiet = run_detailed(
            &test_cfg(vec![400.0; 90], 12),
            &mut StaticController::new(2),
        );
        assert!(quiet.reconfig_spans.is_empty());
        assert!(quiet.seconds.iter().all(|s| s.attr_stall == 0.0));

        // A forced mid-load move must show up as stall time during (or
        // shortly after) the reconfiguration window, and nowhere before it.
        struct OneMove(bool);
        impl Strategy for OneMove {
            fn tick(&mut self, obs: &Observation) -> Action {
                if !self.0 && obs.interval >= 1 && !obs.reconfiguring {
                    self.0 = true;
                    return Action::Reconfigure(pstore_core::controller::ReconfigRequest {
                        target: 4,
                        rate_multiplier: 8.0,
                        reason: pstore_core::controller::ReconfigReason::Emergency,
                        decision_id: 0,
                    });
                }
                Action::None
            }
            fn name(&self) -> &str {
                "one-move"
            }
            fn initial_machines(&self) -> u32 {
                2
            }
        }
        let cfg = test_cfg(vec![650.0; 180], 12);
        let r = run_detailed(&cfg, &mut OneMove(false));
        assert_eq!(r.reconfig_spans.len(), 1);
        let (start, _) = r.reconfig_spans[0];
        let before: f64 = r
            .seconds
            .iter()
            .filter(|s| (s.second as f64) < start - 1.0)
            .map(|s| s.attr_stall)
            .sum();
        let during_or_after: f64 = r
            .seconds
            .iter()
            .filter(|s| (s.second as f64) >= start)
            .map(|s| s.attr_stall)
            .sum();
        assert_eq!(before, 0.0, "stall attributed before any chunk moved");
        assert!(
            during_or_after > 0.0,
            "migration produced no attributed stall"
        );
    }

    #[test]
    fn per_interval_load_averages() {
        let load = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(per_interval_load(&load, 2.0), vec![15.0, 35.0]);
    }

    #[test]
    fn machine_allocation_follows_schedule_during_moves() {
        // Scale 1 -> 4 under light load; during the move the allocated
        // machine count must pass through the schedule's staircase and the
        // run must end at 4.
        let load = vec![100.0; 200];
        let cfg = test_cfg(load, 6);
        struct OneMove(bool);
        impl Strategy for OneMove {
            fn tick(&mut self, obs: &Observation) -> Action {
                if !self.0 && !obs.reconfiguring {
                    self.0 = true;
                    return Action::Reconfigure(pstore_core::controller::ReconfigRequest {
                        target: 4,
                        rate_multiplier: 1.0,
                        reason: pstore_core::controller::ReconfigReason::Planned,
                        decision_id: 0,
                    });
                }
                Action::None
            }
            fn name(&self) -> &str {
                "one-move"
            }
            fn initial_machines(&self) -> u32 {
                1
            }
        }
        let r = run_detailed(&cfg, &mut OneMove(false));
        assert_eq!(r.reconfig_spans.len(), 1);
        assert_eq!(r.seconds.last().unwrap().machines, 4.0);
        // Mid-move the allocation is between 1 and 4.
        let (s, e) = r.reconfig_spans[0];
        let mid: Vec<f64> = r
            .seconds
            .iter()
            .filter(|x| (x.second as f64) > s && (x.second as f64) < e)
            .map(|x| x.machines)
            .collect();
        assert!(
            mid.iter().any(|&m| m > 1.0 && m <= 4.0),
            "staircase: {mid:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = test_cfg(vec![300.0; 60], 42);
        let a = run_detailed(&cfg, &mut StaticController::new(2));
        let b = run_detailed(&cfg, &mut StaticController::new(2));
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.violations, b.violations);
        let pa: Vec<f64> = a.seconds.iter().map(|s| s.p99).collect();
        let pb: Vec<f64> = b.seconds.iter().map(|s| s.p99).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn sharded_run_matches_serial_exactly() {
        // The tentpole determinism claim at simulator granularity: the
        // same run on the threaded engine (4 shards) and the serial
        // inline engine must agree on every observable, to the bit —
        // including through a reconfiguration (the reactive controller
        // scales out mid-run under this load).
        let mut load: Vec<f64> = (0..60).map(|s| 300.0 + 400.0 * s as f64 / 60.0).collect();
        load.extend(vec![700.0; 120]);
        let run = |shards: u32| {
            let mut cfg = test_cfg(load.clone(), 7);
            cfg.shards = shards;
            let mut strat = ReactiveController::new(ReactiveConfig {
                q: 285.0,
                q_hat: 350.0,
                trigger_fraction: 0.9,
                headroom: 0.2,
                smoothing_window: 2,
                scale_in_patience: 10,
                max_machines: 10,
                initial_machines: 2,
            });
            run_detailed(&cfg, &mut strat)
        };
        let serial = run(1);
        let sharded = run(4);
        assert!(
            !serial.reconfig_spans.is_empty(),
            "load curve should force a reconfiguration"
        );
        assert_eq!(serial.committed, sharded.committed);
        assert_eq!(serial.aborted, sharded.aborted);
        assert_eq!(serial.dropped, sharded.dropped);
        assert_eq!(serial.violations, sharded.violations);
        assert_eq!(serial.reconfig_spans, sharded.reconfig_spans);
        assert_eq!(serial.procedure_mix, sharded.procedure_mix);
        assert_eq!(serial.seconds.len(), sharded.seconds.len());
        for (a, b) in serial.seconds.iter().zip(&sharded.seconds) {
            assert_eq!(a.p99, b.p99, "second {}", a.second);
            assert_eq!(a.mean, b.mean, "second {}", a.second);
            assert_eq!(a.throughput, b.throughput, "second {}", a.second);
            assert_eq!(a.machines, b.machines, "second {}", a.second);
            assert_eq!(a.attr_stall, b.attr_stall, "second {}", a.second);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn prov_events_trace_the_control_loop_when_enabled() {
        use pstore_telemetry::kinds;

        // Same ramp that forces the reactive controller to scale out.
        let mut load: Vec<f64> = (0..120).map(|s| 250.0 + 550.0 * s as f64 / 120.0).collect();
        load.extend(vec![800.0; 240]);
        let reactive = || {
            ReactiveController::new(ReactiveConfig {
                q: 285.0,
                q_hat: 350.0,
                trigger_fraction: 0.9,
                headroom: 0.2,
                smoothing_window: 2,
                scale_in_patience: 10,
                max_machines: 10,
                initial_machines: 2,
            })
        };

        // Off by default: a captured run emits no prov_* events.
        let (sink, handle) = pstore_telemetry::MemorySink::new();
        {
            let _guard = pstore_telemetry::install(std::rc::Rc::new(sink));
            run_detailed(&test_cfg(load.clone(), 4), &mut reactive());
        }
        assert!(handle.of_kind(kinds::PROV_RUN).is_empty());
        assert!(handle.of_kind(kinds::PROV_DECISION).is_empty());

        // Opted in: the full provenance chain appears, and every
        // reconfiguration summary points back at the decision that
        // issued it (the PRV-02 contract the verifier checks).
        let (sink, handle) = pstore_telemetry::MemorySink::new();
        {
            let _guard = pstore_telemetry::install(std::rc::Rc::new(sink));
            let mut cfg = test_cfg(load, 4);
            cfg.prov_events = true;
            run_detailed(&cfg, &mut reactive());
        }
        assert!(
            !pstore_telemetry::prov_enabled(),
            "run_detailed must restore the prov gate"
        );
        let runs = handle.of_kind(kinds::PROV_RUN);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].field_str("policy"), Some("Reactive"));
        assert!(!handle.of_kind(kinds::PROV_INTERVAL).is_empty());
        assert!(!handle.of_kind(kinds::PROV_FORECAST).is_empty());
        let decisions = handle.of_kind(kinds::PROV_DECISION);
        assert!(!decisions.is_empty());
        let ids: Vec<_> = decisions.iter().filter_map(|d| d.field_u64("id")).collect();
        let reconfigs = handle.of_kind(kinds::PROV_RECONFIG);
        assert!(!reconfigs.is_empty(), "scale-out must emit prov_reconfig");
        for r in &reconfigs {
            let id = r.field_u64("id").unwrap_or(0);
            assert!(ids.contains(&id), "reconfig id {id} has no decision");
            assert!(r.field_u64("bytes").unwrap_or(0) > 0, "move carried data");
        }
        let chunks = handle.of_kind(kinds::PROV_CHUNK);
        assert!(!chunks.is_empty(), "chunked migration must emit prov_chunk");
    }
}
