//! Slot-based long-horizon simulator (§8.3, Figs 12 and 13).
//!
//! Running the detailed simulator for months of trace is impractical (as
//! the paper notes for its own testbed), so the long-range comparison of
//! allocation strategies uses this slot-level model: per one-minute slot it
//! tracks the allocation state machine — moves take `T(B, A)` (Eq 3),
//! machines follow the just-in-time schedule (Alg 4), effective capacity
//! follows Eq 7 — and accounts cost (Eq 1) and the percentage of time with
//! insufficient capacity (load above the `Q̂`-based effective capacity).

//!
//! ```
//! use pstore_sim::fast::{run_fast, FastSimConfig};
//! use pstore_core::controller::baselines::StaticController;
//!
//! let cfg = FastSimConfig::paper_defaults();
//! let load = vec![800.0; 1440]; // one flat day
//! let r = run_fast(&cfg, &load, &mut StaticController::new(4));
//! assert_eq!(r.avg_machines(), 4.0);
//! assert_eq!(r.insufficient_slots, 0); // 4 x 350 > 800
//! ```

// The fast simulator quantises migration progress into rounds and f32
// timelines.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
use pstore_core::controller::{Action, Observation, Strategy};
use pstore_core::cost_model::{eff_cap, move_time};
use pstore_core::params::SystemParams;
use pstore_core::schedule::MigrationSchedule;
use serde::{Deserialize, Serialize};

/// Configuration of a fast simulation.
#[derive(Debug, Clone)]
pub struct FastSimConfig {
    /// System parameters (`Q`, `Q̂`, `D`, `P`, hardware cap).
    pub params: SystemParams,
    /// Wall-clock seconds per load slot (60 for per-minute traces).
    pub slot_duration_s: f64,
    /// Controller tick cadence, in slots (5 = every five minutes).
    pub tick_every_slots: usize,
    /// Whether to record the per-slot machine/capacity timelines
    /// (needed for Fig 13; costs memory on very long runs).
    pub record_timeline: bool,
    /// Emit the provisioning-observatory event family (`prov_run`,
    /// `prov_interval`, `prov_decision` via the controllers,
    /// `prov_reconfig`). Off by default so default-config traces stay
    /// byte-identical; see
    /// [`prov_events_from_env`](crate::detailed::prov_events_from_env).
    pub prov_events: bool,
}

impl FastSimConfig {
    /// The paper's §8.3 setting: 1-minute slots, 5-minute decisions.
    pub fn paper_defaults() -> Self {
        FastSimConfig {
            params: SystemParams::b2w_paper(),
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: true,
            prov_events: crate::detailed::prov_events_from_env(),
        }
    }
}

/// Result of a fast simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastSimResult {
    /// Strategy name.
    pub strategy: String,
    /// Total cost in machine-slots (Equation 1).
    pub cost_machine_slots: f64,
    /// Slots in which load exceeded the effective maximum capacity.
    pub insufficient_slots: u64,
    /// Total slots simulated.
    pub total_slots: u64,
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Per-slot machines allocated (empty unless `record_timeline`).
    pub machines_timeline: Vec<f32>,
    /// Per-slot effective capacity at `Q̂` (empty unless `record_timeline`).
    pub capacity_timeline: Vec<f32>,
}

impl FastSimResult {
    /// Percentage of slots with insufficient capacity.
    pub fn pct_insufficient(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        100.0 * self.insufficient_slots as f64 / self.total_slots as f64
    }

    /// Average machines allocated.
    pub fn avg_machines(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        self.cost_machine_slots / self.total_slots as f64
    }
}

/// An in-progress move in the slot model.
struct MoveState {
    schedule: MigrationSchedule,
    from: u32,
    to: u32,
    /// Total duration in slots.
    duration_slots: f64,
    /// Slots elapsed so far.
    elapsed: f64,
    /// Telemetry span covering the move (0 when telemetry is off).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    span_id: u64,
    /// Provenance: the `prov_decision` id that requested this move
    /// (0 = unattributed) and its start time, for the `prov_reconfig`
    /// summary emitted on completion.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    decision_id: u64,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    started_at: f64,
}

/// Runs the slot-based simulation of a strategy over a per-slot load curve
/// (load in the same units as `Q`, e.g. txn/s).
pub fn run_fast(cfg: &FastSimConfig, load: &[f64], strategy: &mut dyn Strategy) -> FastSimResult {
    cfg.params.validate();
    assert!(cfg.tick_every_slots >= 1, "tick cadence must be >= 1 slot");
    assert!(cfg.slot_duration_s > 0.0, "slot duration must be positive");
    let p = cfg.params.partitions_per_node;
    let d_s = cfg.params.d.as_secs_f64();

    let mut machines = strategy
        .initial_machines()
        .clamp(1, cfg.params.max_machines);
    let mut in_move: Option<MoveState> = None;
    let mut cost = 0.0f64;
    let mut insufficient = 0u64;
    let mut reconfigs = 0u64;
    let mut tick_idx = 0usize;
    let mut machines_timeline = Vec::new();
    let mut capacity_timeline = Vec::new();

    // Root span for the whole run (profiled by `pstore-trace profile`).
    #[cfg(feature = "telemetry")]
    let run_span = {
        pstore_telemetry::set_time(0.0);
        if pstore_telemetry::enabled() {
            pstore_telemetry::begin_span("fast_sim", &[])
        } else {
            0
        }
    };
    // Provisioning-observatory gate, scoped to the run (see the detailed
    // simulator for the full event-family contract).
    #[cfg(feature = "telemetry")]
    let prov_was = pstore_telemetry::set_prov_enabled(cfg.prov_events);
    #[cfg(feature = "telemetry")]
    if pstore_telemetry::prov_enabled() {
        pstore_telemetry::emit(
            pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_RUN)
                .with("q", cfg.params.q)
                .with("d_s", d_s)
                .with(
                    "interval_s",
                    cfg.slot_duration_s * cfg.tick_every_slots as f64,
                )
                .with("initial", machines)
                .with("policy", strategy.name()),
        );
    }

    for (slot, &demand) in load.iter().enumerate() {
        #[cfg(feature = "telemetry")]
        {
            #[allow(clippy::cast_precision_loss)] // slot counts are far below 2^53
            pstore_telemetry::set_time(slot as f64 * cfg.slot_duration_s);
        }
        // Controller decision at tick boundaries.
        if slot % cfg.tick_every_slots == 0 {
            let window =
                &load[slot.saturating_sub(cfg.tick_every_slots)..=slot.min(load.len() - 1)];
            let measured = window.iter().sum::<f64>() / window.len() as f64;
            #[cfg(feature = "telemetry")]
            if pstore_telemetry::prov_enabled() {
                pstore_telemetry::emit(
                    pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_INTERVAL)
                        .with("interval", tick_idx)
                        .with("observed", measured)
                        .with("machines", machines)
                        .with("reconfiguring", in_move.is_some()),
                );
            }
            let obs = Observation {
                interval: tick_idx,
                load: measured,
                machines,
                reconfiguring: in_move.is_some(),
            };
            tick_idx += 1;
            if let Action::Reconfigure(req) = strategy.tick(&obs) {
                let target = req.target.clamp(1, cfg.params.max_machines);
                if in_move.is_none() && target != machines {
                    let t_s = move_time(machines, target, p, d_s) / req.rate_multiplier.max(0.1);
                    #[cfg(feature = "telemetry")]
                    let span_id = if pstore_telemetry::enabled() {
                        pstore_telemetry::begin_span(
                            pstore_telemetry::kinds::SPAN_RECONFIG,
                            &[
                                ("from", pstore_telemetry::Value::from(machines)),
                                ("to", pstore_telemetry::Value::from(target)),
                            ],
                        )
                    } else {
                        0
                    };
                    #[cfg(not(feature = "telemetry"))]
                    let span_id = 0u64;
                    in_move = Some(MoveState {
                        schedule: MigrationSchedule::plan(machines, target),
                        from: machines,
                        to: target,
                        duration_slots: (t_s / cfg.slot_duration_s).max(1e-9),
                        elapsed: 0.0,
                        span_id,
                        decision_id: req.decision_id,
                        started_at: slot as f64 * cfg.slot_duration_s,
                    });
                }
            }
        }

        // Advance the move and derive this slot's allocation and capacity.
        let (alloc, capacity) = match &mut in_move {
            Some(mv) => {
                let f = (mv.elapsed / mv.duration_slots).clamp(0.0, 1.0);
                let total_rounds = mv.schedule.total_rounds().max(1);
                let round = ((f * total_rounds as f64) as usize).min(total_rounds - 1);
                let alloc = mv.schedule.machines_in_round(round) as f64;
                let capacity = eff_cap(mv.from, mv.to, f, cfg.params.q_hat);
                mv.elapsed += 1.0;
                if mv.elapsed >= mv.duration_slots {
                    machines = mv.to;
                    reconfigs += 1;
                    #[cfg(feature = "telemetry")]
                    pstore_telemetry::end_span(
                        pstore_telemetry::kinds::SPAN_RECONFIG,
                        mv.span_id,
                        &[],
                    );
                    // The slot model moves no real data: the provenance
                    // summary carries timing and endpoints, zero
                    // chunk/row/byte/fence counts.
                    #[cfg(feature = "telemetry")]
                    if pstore_telemetry::prov_enabled() {
                        let now = slot as f64 * cfg.slot_duration_s;
                        pstore_telemetry::emit(
                            pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_RECONFIG)
                                .with("id", mv.decision_id)
                                .with("from", mv.from)
                                .with("to", mv.to)
                                .with("start", mv.started_at)
                                .with("duration_s", now - mv.started_at)
                                .with("chunks", 0u64)
                                .with("rows", 0u64)
                                .with("bytes", 0u64)
                                .with("fences", 0u64),
                        );
                    }
                    in_move = None;
                }
                (alloc, capacity)
            }
            None => (machines as f64, machines as f64 * cfg.params.q_hat),
        };

        cost += alloc;
        if demand > capacity {
            insufficient += 1;
        }
        if cfg.record_timeline {
            machines_timeline.push(alloc as f32);
            capacity_timeline.push(capacity as f32);
        }
    }

    // A move still in flight when the trace ends would leave a dangling
    // span (TEL-02); close it explicitly, marked truncated.
    #[cfg(feature = "telemetry")]
    if let Some(mv) = &in_move {
        // pstore-lint: allow(SA-02): second end site for the in-move
        // reconfig span — the loop above closes moves that complete, this
        // closes one truncated by trace end; exactly one of the two runs
        // per span, and TEL-01/02 verify pairing at runtime.
        pstore_telemetry::end_span(
            pstore_telemetry::kinds::SPAN_RECONFIG,
            mv.span_id,
            &[("truncated", pstore_telemetry::Value::from(true))],
        );
    }
    #[cfg(feature = "telemetry")]
    pstore_telemetry::end_span("fast_sim", run_span, &[]);
    #[cfg(feature = "telemetry")]
    pstore_telemetry::set_prov_enabled(prov_was);

    FastSimResult {
        strategy: strategy.name().to_string(),
        cost_machine_slots: cost,
        insufficient_slots: insufficient,
        total_slots: load.len() as u64,
        reconfigurations: reconfigs,
        machines_timeline,
        capacity_timeline,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;
    use pstore_core::controller::baselines::{SimpleController, StaticController};
    use pstore_core::controller::forecaster::OracleForecaster;
    use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
    use pstore_core::controller::reactive::{ReactiveConfig, ReactiveController};
    use pstore_core::planner::{Planner, PlannerConfig};
    use std::time::Duration;

    fn cfg() -> FastSimConfig {
        FastSimConfig {
            params: SystemParams {
                q: 285.0,
                q_hat: 350.0,
                d: Duration::from_secs(4646),
                partitions_per_node: 6,
                interval: Duration::from_secs(300),
                max_machines: 10,
            },
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: true,
            prov_events: false,
        }
    }

    /// A smooth daily wave between roughly 300 and 2800 txn/s.
    fn daily_wave(days: usize) -> Vec<f64> {
        (0..days * 1440)
            .map(|m| {
                let phase = 2.0 * std::f64::consts::PI * (m % 1440) as f64 / 1440.0;
                1550.0 - 1250.0 * phase.cos()
            })
            .collect()
    }

    fn oracle_pstore(
        load: &[f64],
        c: &FastSimConfig,
        q: f64,
    ) -> PStoreController<OracleForecaster> {
        let per_tick: Vec<f64> = load
            .chunks(c.tick_every_slots)
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        let planner = Planner::new(PlannerConfig {
            q,
            d_intervals: c.params.d.as_secs_f64() / (c.slot_duration_s * c.tick_every_slots as f64),
            partitions_per_node: c.params.partitions_per_node,
            max_machines: c.params.max_machines,
        });
        PStoreController::new(
            planner,
            OracleForecaster::new(per_tick),
            PStoreConfig {
                horizon: 48,
                prediction_inflation: 1.15,
                scale_in_confirmations: 3,
                emergency_rate_multiplier: 1.0,
                initial_machines: 2,
            },
        )
    }

    #[test]
    fn static_ten_never_runs_short_but_costs_most() {
        let c = cfg();
        let load = daily_wave(3);
        let r10 = run_fast(&c, &load, &mut StaticController::new(10));
        assert_eq!(r10.insufficient_slots, 0);
        assert_eq!(r10.avg_machines(), 10.0);
        let r4 = run_fast(&c, &load, &mut StaticController::new(4));
        // Peak ~2800 needs 8 machines at Q̂: static 4 runs short at peaks.
        assert!(r4.insufficient_slots > 0);
        assert!(r4.cost_machine_slots < r10.cost_machine_slots);
    }

    #[test]
    fn pstore_oracle_tracks_the_wave_cheaply_and_safely() {
        let c = cfg();
        let load = daily_wave(4);
        let mut strat = oracle_pstore(&load, &c, 285.0);
        let r = run_fast(&c, &load, &mut strat);
        // Not exactly zero in general: decisions are at 5-minute
        // granularity (the paper makes the same caveat for "P-Store
        // Oracle" in Fig 12), but shortfalls must be negligible.
        assert!(
            r.insufficient_slots <= 5,
            "oracle P-Store ran short for {} slots",
            r.insufficient_slots
        );
        // Must be much cheaper than peak provisioning.
        assert!(
            r.avg_machines() < 8.0,
            "avg machines {} not cheaper than peak",
            r.avg_machines()
        );
        assert!(
            r.reconfigurations >= 4,
            "too few moves: {}",
            r.reconfigurations
        );
        // And it must actually scale up and down across the day.
        let max = r.machines_timeline.iter().copied().fold(0.0f32, f32::max);
        let min = r
            .machines_timeline
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert!(max >= 9.0, "never reached peak allocation: {max}");
        assert!(min <= 3.0, "never scaled down: {min}");
    }

    #[test]
    fn reactive_runs_short_during_rises() {
        let c = cfg();
        let load = daily_wave(4);
        let mut reactive = ReactiveController::new(ReactiveConfig {
            q: 285.0,
            q_hat: 350.0,
            trigger_fraction: 0.95,
            headroom: 0.10,
            smoothing_window: 3,
            scale_in_patience: 6,
            max_machines: 10,
            initial_machines: 2,
        });
        let r = run_fast(&c, &load, &mut reactive);
        let mut p = oracle_pstore(&load, &c, 285.0);
        let rp = run_fast(&c, &load, &mut p);
        // The reactive policy reconfigures only once capacity is already
        // tight, so it accrues strictly more insufficient slots.
        assert!(
            r.insufficient_slots > rp.insufficient_slots,
            "reactive {} vs p-store {}",
            r.insufficient_slots,
            rp.insufficient_slots
        );
    }

    #[test]
    fn simple_schedule_works_until_the_pattern_breaks() {
        let c = cfg();
        let mut load = daily_wave(4);
        // Day 3 brings an out-of-pattern surge (think Black Friday).
        for v in &mut load[2 * 1440..3 * 1440] {
            *v *= 1.8;
        }
        // Scale out at 07:00, in at 23:00; 9 machines by day, 2 by night.
        let mut simple = SimpleController::new(288, 84, 276, 9, 2);
        let r = run_fast(&c, &load, &mut simple);
        let normal_days: u64 = r.machines_timeline[..2 * 1440]
            .iter()
            .zip(&load[..2 * 1440])
            .zip(&r.capacity_timeline[..2 * 1440])
            .filter(|((_, l), cap)| **l > **cap as f64)
            .count() as u64;
        let surge_day: u64 = load[2 * 1440..3 * 1440]
            .iter()
            .zip(&r.capacity_timeline[2 * 1440..3 * 1440])
            .filter(|(l, cap)| **l > **cap as f64)
            .count() as u64;
        assert!(
            surge_day > normal_days,
            "surge day ({surge_day}) should break the fixed schedule (normal {normal_days})"
        );
    }

    #[test]
    fn lower_q_costs_more_but_runs_short_less() {
        // The Fig 12 trade-off: smaller Q = bigger buffer = higher cost,
        // fewer capacity shortfalls.
        let c = cfg();
        let mut load = daily_wave(4);
        // Add noise spikes so a tight Q actually gets caught out.
        for (i, v) in load.iter_mut().enumerate() {
            if i % 97 == 0 {
                *v *= 1.25;
            }
        }
        let run_q = |q: f64| {
            let mut s = oracle_pstore(&load, &c, q);
            run_fast(&c, &load, &mut s)
        };
        let tight = run_q(340.0); // minimal buffer below Q̂
        let loose = run_q(200.0); // generous buffer
        assert!(
            loose.cost_machine_slots > tight.cost_machine_slots,
            "loose {} <= tight {}",
            loose.cost_machine_slots,
            tight.cost_machine_slots
        );
        assert!(
            loose.insufficient_slots <= tight.insufficient_slots,
            "loose {} > tight {}",
            loose.insufficient_slots,
            tight.insufficient_slots
        );
    }

    #[test]
    fn cost_accounts_schedule_allocation_during_moves() {
        // A flat load and a single forced move: cost must lie between
        // "never moved" and "held the larger cluster the whole time".
        let c = cfg();
        let load = vec![500.0; 600];
        struct OneMove(bool);
        impl Strategy for OneMove {
            fn tick(&mut self, obs: &Observation) -> Action {
                if !self.0 && !obs.reconfiguring {
                    self.0 = true;
                    return Action::Reconfigure(pstore_core::controller::ReconfigRequest {
                        target: 8,
                        rate_multiplier: 1.0,
                        reason: pstore_core::controller::ReconfigReason::Planned,
                        decision_id: 0,
                    });
                }
                Action::None
            }
            fn name(&self) -> &str {
                "one-move"
            }
            fn initial_machines(&self) -> u32 {
                2
            }
        }
        let r = run_fast(&c, &load, &mut OneMove(false));
        assert_eq!(r.reconfigurations, 1);
        let move_slots = (move_time(2, 8, 6, 4646.0) / 60.0).ceil();
        let min_cost = 2.0 * move_slots + 8.0 * (600.0 - move_slots);
        assert!(r.cost_machine_slots > 0.9 * min_cost);
        assert!(r.cost_machine_slots < 8.0 * 600.0);
        // Final allocation is 8.
        assert_eq!(*r.machines_timeline.last().unwrap(), 8.0);
    }

    #[test]
    fn emergency_rate_shortens_the_move() {
        let c = cfg();
        let load = vec![500.0; 400];
        struct Forced(f64, bool);
        impl Strategy for Forced {
            fn tick(&mut self, obs: &Observation) -> Action {
                if !self.1 && !obs.reconfiguring {
                    self.1 = true;
                    return Action::Reconfigure(pstore_core::controller::ReconfigRequest {
                        target: 8,
                        rate_multiplier: self.0,
                        reason: pstore_core::controller::ReconfigReason::Emergency,
                        decision_id: 0,
                    });
                }
                Action::None
            }
            fn name(&self) -> &str {
                "forced"
            }
            fn initial_machines(&self) -> u32 {
                2
            }
        }
        let slow = run_fast(&c, &load, &mut Forced(1.0, false));
        let fast = run_fast(&c, &load, &mut Forced(8.0, false));
        // Faster migration reaches full capacity sooner = fewer low-capacity
        // slots = lower time-to-capacity; compare when capacity first hits 8
        // machines worth.
        let first_full = |r: &FastSimResult| {
            r.capacity_timeline
                .iter()
                .position(|&cp| cp >= (8.0 * 350.0 - 1.0) as f32)
                .unwrap_or(usize::MAX)
        };
        assert!(first_full(&fast) < first_full(&slow));
    }
}
