//! Per-second latency accounting: percentiles, SLA violations, CDFs.
//!
//! The paper measures 50th/95th/99th percentile latency every second and
//! counts *SLA violations* as the number of seconds in which a percentile
//! exceeds 500 ms — "the maximum delay that is unnoticeable by users"
//! (§8.2, Table 2). Fig 10 plots CDFs of the top 1% of those per-second
//! percentiles.

// Latency accounting buckets continuous completion times into whole
// seconds and sample indices.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
use pstore_telemetry::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The paper's SLA threshold: 500 ms.
pub const SLA_THRESHOLD_S: f64 = 0.5;

/// Sliding-window width (seconds) for the windowed percentile series:
/// per-second log-bucketed histograms are retained for this many seconds
/// and merged (`TEL-03` makes the merge order-insensitive) into
/// `win_p50/win_p95/win_p99`.
pub const QUANTILE_WINDOW_S: usize = 30;

/// Latency percentiles of one wall-clock second.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecondMetrics {
    /// Second index since the start of the run.
    pub second: u64,
    /// Transactions completed in this second.
    pub throughput: u64,
    /// Median latency (seconds).
    pub p50: f64,
    /// 95th percentile latency (seconds).
    pub p95: f64,
    /// 99th percentile latency (seconds).
    pub p99: f64,
    /// Mean latency (seconds).
    pub mean: f64,
    /// Machines allocated during this second (cost accounting).
    pub machines: f64,
    /// Whether a reconfiguration was in progress.
    pub reconfiguring: bool,
    /// Summed end-to-end latency (txn-seconds) completed this second.
    #[serde(default)]
    pub attr_total: f64,
    /// Txn-seconds of pure queueing (wait minus migration stall).
    #[serde(default)]
    pub attr_queue: f64,
    /// Txn-seconds of execution (service time).
    #[serde(default)]
    pub attr_exec: f64,
    /// Txn-seconds of migration interference (wait spent behind chunk
    /// service bursts). `attr_queue + attr_exec + attr_stall ==
    /// attr_total` exactly, by construction (the TEL-06 identity).
    #[serde(default)]
    pub attr_stall: f64,
    /// Median over the trailing [`QUANTILE_WINDOW_S`]-second window.
    #[serde(default)]
    pub win_p50: f64,
    /// 95th percentile over the trailing window.
    #[serde(default)]
    pub win_p95: f64,
    /// 99th percentile over the trailing window.
    #[serde(default)]
    pub win_p99: f64,
}

/// Collects per-second latency samples and reduces them to metrics.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    current_second: u64,
    samples: Vec<f64>,
    seconds: Vec<SecondMetrics>,
    machines: f64,
    reconfiguring: bool,
    // Latency-attribution accumulators for the second being filled.
    attr_queue: f64,
    attr_exec: f64,
    attr_stall: f64,
    // Per-second histograms of the trailing window, newest last.
    window: VecDeque<Histogram>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Updates the machine count attributed to subsequent seconds.
    pub fn set_machines(&mut self, machines: f64) {
        self.machines = machines;
    }

    /// Updates the reconfiguring flag attributed to subsequent seconds.
    pub fn set_reconfiguring(&mut self, reconfiguring: bool) {
        self.reconfiguring = reconfiguring;
    }

    /// Records a completed transaction: completion time (seconds since
    /// start) and its latency in seconds. The whole latency is attributed
    /// to execution; use [`LatencyRecorder::record_attributed`] when the
    /// queue/exec/stall decomposition is known.
    ///
    /// Completions must arrive in non-decreasing second order.
    pub fn record(&mut self, completion_time: f64, latency: f64) {
        self.record_attributed(completion_time, 0.0, latency, 0.0);
    }

    /// Records a completed transaction with its end-to-end latency
    /// decomposed into pure queueing, execution, and migration-stall
    /// components (each in seconds; the latency is their sum).
    ///
    /// Completions must arrive in non-decreasing second order.
    pub fn record_attributed(&mut self, completion_time: f64, queue: f64, exec: f64, stall: f64) {
        let sec = completion_time.max(0.0) as u64;
        while sec > self.current_second {
            self.flush_second();
        }
        self.samples.push(queue + exec + stall);
        self.attr_queue += queue;
        self.attr_exec += exec;
        self.attr_stall += stall;
    }

    /// Advances the clock to `time` (flushing finished seconds) without
    /// recording a sample — used by idle periods.
    pub fn advance_to(&mut self, time: f64) {
        let sec = time.max(0.0) as u64;
        while sec > self.current_second {
            self.flush_second();
        }
    }

    fn flush_second(&mut self) {
        let mut samples = std::mem::take(&mut self.samples);
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let pick = |q: f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                samples[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1]
            }
        };
        let mean = if n == 0 {
            0.0
        } else {
            samples.iter().sum::<f64>() / n as f64
        };
        let mut second_hist = Histogram::new();
        for &s in &samples {
            second_hist.record(s);
        }
        if self.window.len() >= QUANTILE_WINDOW_S {
            self.window.pop_front();
        }
        self.window.push_back(second_hist);
        let mut windowed = Histogram::new();
        for h in &self.window {
            windowed.merge(h);
        }
        let win_q = |q: f64| {
            if windowed.count() == 0 {
                0.0
            } else {
                windowed.quantile(q)
            }
        };
        let metrics = SecondMetrics {
            second: self.current_second,
            throughput: n as u64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            mean,
            machines: self.machines,
            reconfiguring: self.reconfiguring,
            attr_total: self.attr_queue + self.attr_exec + self.attr_stall,
            attr_queue: self.attr_queue,
            attr_exec: self.attr_exec,
            attr_stall: self.attr_stall,
            win_p50: win_q(0.50),
            win_p95: win_q(0.95),
            win_p99: win_q(0.99),
        };
        self.attr_queue = 0.0;
        self.attr_exec = 0.0;
        self.attr_stall = 0.0;
        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::SECOND,
            "second" => metrics.second,
            "throughput" => metrics.throughput,
            "p50" => metrics.p50,
            "p95" => metrics.p95,
            "p99" => metrics.p99,
            "mean" => metrics.mean,
            "machines" => metrics.machines,
            "reconfiguring" => metrics.reconfiguring,
            "attr_total" => metrics.attr_total,
            "attr_queue" => metrics.attr_queue,
            "attr_exec" => metrics.attr_exec,
            "attr_stall" => metrics.attr_stall,
            "win_p50" => metrics.win_p50,
            "win_p95" => metrics.win_p95,
            "win_p99" => metrics.win_p99,
        );
        #[cfg(feature = "telemetry")]
        if pstore_telemetry::enabled() {
            pstore_telemetry::with_registry(|r| {
                let phase = if metrics.reconfiguring {
                    "latency.p99.reconfig"
                } else {
                    "latency.p99.stable"
                };
                r.record_histogram(phase, metrics.p99);
                r.inc_counter("latency.seconds", 1);
            });
            if metrics.p99 > SLA_THRESHOLD_S {
                pstore_telemetry::with_registry(|r| r.inc_counter("sla.violation_seconds", 1));
                pstore_telemetry::emit(
                    pstore_telemetry::Event::new(pstore_telemetry::kinds::SLA_VIOLATION)
                        .with("second", metrics.second)
                        .with("p99", metrics.p99),
                );
            }
        }
        self.seconds.push(metrics);
        self.current_second += 1;
    }

    /// Finalises the recorder, returning all per-second metrics.
    pub fn finish(mut self) -> Vec<SecondMetrics> {
        self.flush_second();
        self.seconds
    }
}

/// SLA-violation counts per percentile (the rows of Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaViolations {
    /// Seconds in which p50 exceeded the threshold.
    pub p50: u64,
    /// Seconds in which p95 exceeded the threshold.
    pub p95: u64,
    /// Seconds in which p99 exceeded the threshold.
    pub p99: u64,
}

/// Counts per-second SLA violations against `threshold` (seconds).
pub fn count_sla_violations(seconds: &[SecondMetrics], threshold: f64) -> SlaViolations {
    let mut v = SlaViolations::default();
    for s in seconds {
        if s.p50 > threshold {
            v.p50 += 1;
        }
        if s.p95 > threshold {
            v.p95 += 1;
        }
        if s.p99 > threshold {
            v.p99 += 1;
        }
    }
    v
}

/// Average machines allocated over the run.
pub fn average_machines(seconds: &[SecondMetrics]) -> f64 {
    if seconds.is_empty() {
        return 0.0;
    }
    seconds.iter().map(|s| s.machines).sum::<f64>() / seconds.len() as f64
}

/// The top `fraction` (e.g. 0.01) of a per-second percentile series, sorted
/// ascending — the data behind the Fig 10 CDFs.
pub fn top_fraction(mut values: Vec<f64>, fraction: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    values.sort_by(f64::total_cmp);
    let keep = ((values.len() as f64) * fraction).ceil() as usize;
    values.split_off(values.len().saturating_sub(keep.max(1).min(values.len())))
}

/// Evaluates the empirical CDF of `sorted_values` at the given points.
/// Returns `(value, cumulative_probability)` pairs.
pub fn cdf_points(sorted_values: &[f64], resolution: usize) -> Vec<(f64, f64)> {
    if sorted_values.is_empty() {
        return Vec::new();
    }
    let n = sorted_values.len();
    (0..=resolution)
        .map(|i| {
            let idx = (i * (n - 1)) / resolution.max(1);
            (sorted_values[idx], (idx + 1) as f64 / n as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut r = LatencyRecorder::new();
        r.set_machines(4.0);
        for i in 1..=100 {
            r.record(0.5, i as f64 / 1000.0); // 1..100 ms in second 0
        }
        let secs = r.finish();
        assert_eq!(secs.len(), 1);
        let s = secs[0];
        assert_eq!(s.throughput, 100);
        assert!((s.p50 - 0.050).abs() < 1e-9);
        assert!((s.p95 - 0.095).abs() < 1e-9);
        assert!((s.p99 - 0.099).abs() < 1e-9);
        assert!((s.mean - 0.0505).abs() < 1e-9);
        assert_eq!(s.machines, 4.0);
    }

    #[test]
    fn seconds_are_contiguous_even_when_idle() {
        let mut r = LatencyRecorder::new();
        r.record(0.1, 0.01);
        r.record(3.7, 0.02); // seconds 1 and 2 are idle
        let secs = r.finish();
        assert_eq!(secs.len(), 4);
        assert_eq!(secs[1].throughput, 0);
        assert_eq!(secs[2].throughput, 0);
        assert_eq!(secs[3].throughput, 1);
    }

    #[test]
    fn sla_violation_counting() {
        let mk = |p50, p95, p99| SecondMetrics {
            throughput: 1,
            p50,
            p95,
            p99,
            machines: 1.0,
            ..SecondMetrics::default()
        };
        let secs = vec![mk(0.1, 0.3, 0.6), mk(0.6, 0.7, 0.8), mk(0.1, 0.2, 0.3)];
        let v = count_sla_violations(&secs, SLA_THRESHOLD_S);
        assert_eq!(v.p50, 1);
        assert_eq!(v.p95, 1);
        assert_eq!(v.p99, 2);
    }

    #[test]
    fn average_machines_over_run() {
        let mk = |m| SecondMetrics {
            machines: m,
            ..SecondMetrics::default()
        };
        let secs = vec![mk(2.0), mk(4.0), mk(6.0)];
        assert_eq!(average_machines(&secs), 4.0);
    }

    #[test]
    fn top_fraction_keeps_largest_values() {
        let vals: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let top = top_fraction(vals, 0.01);
        assert_eq!(top, vec![199.0, 200.0]);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut vals: Vec<f64> = (0..100).map(|i| (i as f64 * 37.0) % 13.0).collect();
        vals.sort_by(f64::total_cmp);
        let cdf = cdf_points(&vals, 20);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn advance_to_flushes_idle_seconds() {
        let mut r = LatencyRecorder::new();
        r.advance_to(5.5);
        let secs = r.finish();
        assert_eq!(secs.len(), 6);
        assert!(secs.iter().all(|s| s.throughput == 0));
    }

    #[test]
    fn advance_to_gap_seconds_have_zero_percentiles_and_current_flags() {
        // Gap seconds created by advance_to must appear with zero
        // throughput AND zero percentiles, carrying whatever machine
        // count / reconfiguring flag is current when they flush.
        let mut r = LatencyRecorder::new();
        r.set_machines(3.0);
        r.record(0.2, 0.040);
        r.advance_to(1.0); // flush second 0 under the old settings
        r.set_machines(5.0);
        r.set_reconfiguring(true);
        r.advance_to(4.0); // seconds 1..3 idle under the new settings
        let secs = r.finish();
        assert_eq!(secs.len(), 5);
        assert_eq!(secs[0].machines, 3.0);
        assert!(!secs[0].reconfiguring);
        for s in &secs[1..=3] {
            assert_eq!(s.throughput, 0);
            assert_eq!((s.p50, s.p95, s.p99, s.mean), (0.0, 0.0, 0.0, 0.0));
            assert_eq!(s.machines, 5.0);
            assert!(s.reconfiguring);
        }
        // Seconds stay contiguous across the gap.
        for (i, s) in secs.iter().enumerate() {
            assert_eq!(s.second, i as u64);
        }
    }

    #[test]
    fn advance_to_same_second_does_not_flush() {
        let mut r = LatencyRecorder::new();
        r.record(0.1, 0.010);
        r.advance_to(0.9); // still inside second 0
        r.record(0.95, 0.030);
        let secs = r.finish();
        assert_eq!(secs.len(), 1);
        assert_eq!(secs[0].throughput, 2);
    }

    #[test]
    fn finish_flushes_the_final_partial_second() {
        // Samples in a second that never completes must still be reported:
        // finish() flushes the trailing partial second exactly once.
        let mut r = LatencyRecorder::new();
        r.record(2.3, 0.100);
        r.record(2.8, 0.300);
        let secs = r.finish();
        assert_eq!(secs.len(), 3);
        let last = secs[2];
        assert_eq!(last.second, 2);
        assert_eq!(last.throughput, 2);
        assert_eq!(last.p50, 0.100);
        assert_eq!(last.p99, 0.300);
        assert_eq!(last.mean, 0.200);
    }

    #[test]
    fn finish_on_empty_recorder_reports_one_empty_second() {
        let secs = LatencyRecorder::new().finish();
        assert_eq!(secs.len(), 1);
        assert_eq!(secs[0].second, 0);
        assert_eq!(secs[0].throughput, 0);
    }

    #[test]
    fn sla_violation_boundary_is_strictly_greater() {
        // §8.2: a violation is a second whose percentile *exceeds* 500 ms.
        // Exactly-at-threshold seconds are compliant.
        let mk = |p: f64| SecondMetrics {
            throughput: 1,
            p50: p,
            p95: p,
            p99: p,
            mean: p,
            machines: 1.0,
            ..SecondMetrics::default()
        };
        let secs = vec![
            mk(SLA_THRESHOLD_S),                // exactly at: no violation
            mk(SLA_THRESHOLD_S + f64::EPSILON), // barely over: violation
            mk(SLA_THRESHOLD_S - 1e-12),        // barely under: no violation
        ];
        let v = count_sla_violations(&secs, SLA_THRESHOLD_S);
        assert_eq!((v.p50, v.p95, v.p99), (1, 1, 1));
    }

    #[test]
    fn single_sample_second_has_equal_percentiles() {
        // rank = ceil(n*q).clamp(1, n): with n = 1 every percentile is the
        // sample itself.
        let mut r = LatencyRecorder::new();
        r.record(0.5, 0.123);
        let s = r.finish()[0];
        assert_eq!((s.p50, s.p95, s.p99, s.mean), (0.123, 0.123, 0.123, 0.123));
    }

    #[test]
    fn attribution_components_sum_to_recorded_latency() {
        let mut r = LatencyRecorder::new();
        r.record_attributed(0.2, 0.010, 0.025, 0.005);
        r.record_attributed(0.8, 0.0, 0.030, 0.0);
        let secs = r.finish();
        assert_eq!(secs.len(), 1);
        let s = secs[0];
        assert!((s.attr_queue - 0.010).abs() < 1e-12);
        assert!((s.attr_exec - 0.055).abs() < 1e-12);
        assert!((s.attr_stall - 0.005).abs() < 1e-12);
        // The TEL-06 identity: components sum to the attributed total,
        // which is itself the sum of recorded latencies (mean * n).
        assert!((s.attr_total - (s.attr_queue + s.attr_exec + s.attr_stall)).abs() < 1e-12);
        assert!((s.mean * s.throughput as f64 - s.attr_total).abs() < 1e-12);
    }

    #[test]
    fn plain_record_attributes_everything_to_execution() {
        let mut r = LatencyRecorder::new();
        r.record(0.1, 0.040);
        let s = r.finish()[0];
        assert_eq!(s.attr_queue, 0.0);
        assert_eq!(s.attr_stall, 0.0);
        assert!((s.attr_exec - 0.040).abs() < 1e-12);
    }

    #[test]
    fn attribution_accumulators_reset_each_second() {
        let mut r = LatencyRecorder::new();
        r.record_attributed(0.5, 0.1, 0.2, 0.3);
        r.record_attributed(1.5, 0.0, 0.05, 0.0);
        let secs = r.finish();
        assert!((secs[0].attr_stall - 0.3).abs() < 1e-12);
        assert_eq!(secs[1].attr_stall, 0.0);
        assert!((secs[1].attr_exec - 0.05).abs() < 1e-12);
    }

    #[test]
    fn windowed_percentiles_remember_then_evict_a_spike() {
        let mut r = LatencyRecorder::new();
        // Second 0: five slow txns. Seconds 1..=35: fast traffic. The
        // per-second p99 forgets the spike immediately; the windowed p99
        // must hold it for QUANTILE_WINDOW_S seconds, then let it go.
        for i in 0..5 {
            r.record(0.1 + f64::from(i) * 0.01, 2.0);
        }
        for s in 1..=35u32 {
            for i in 0..5 {
                r.record(f64::from(s) + 0.1 + f64::from(i) * 0.01, 0.010);
            }
        }
        let secs = r.finish();
        assert_eq!(secs[10].p99, 0.010);
        assert!(
            secs[10].win_p99 > SLA_THRESHOLD_S,
            "window at second 10 still sees the spike: {}",
            secs[10].win_p99
        );
        assert!(
            secs[35].win_p99 < SLA_THRESHOLD_S,
            "spike evicted after the window passes: {}",
            secs[35].win_p99
        );
    }

    #[test]
    fn windowed_percentiles_on_idle_run_are_zero() {
        let mut r = LatencyRecorder::new();
        r.advance_to(3.0);
        let secs = r.finish();
        assert!(secs.iter().all(|s| s.win_p99 == 0.0 && s.win_p50 == 0.0));
    }
}
