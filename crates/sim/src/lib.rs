//! Simulation harnesses for the P-Store reproduction.
//!
//! Two simulators regenerate the paper's evaluation:
//!
//! * [`detailed`] — a discrete-event simulation that executes real B2W
//!   transactions on the real partitioned engine with per-partition
//!   queueing and chunk-paced live migration (Figs 7–11, Table 2).
//! * [`fast`] — a slot-based allocation/capacity model for multi-month
//!   strategy comparisons (Figs 12–13), mirroring the simulation the paper
//!   itself uses for §8.3.
//!
//! [`latency`] provides the shared per-second percentile and SLA
//! accounting.

#![warn(missing_docs)]

pub mod detailed;
pub mod fast;
pub mod latency;
pub mod scenarios;

pub use detailed::{run_detailed, DetailedSimConfig, DetailedSimResult};
pub use fast::{run_fast, FastSimConfig, FastSimResult};
pub use latency::{SecondMetrics, SlaViolations, SLA_THRESHOLD_S};
