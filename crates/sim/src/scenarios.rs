//! Canned experiment scenarios shared by the benchmark binaries and the
//! integration tests.
//!
//! The §8.2 experiments replay B2W traffic at 10x speed: one trace minute
//! becomes [`TRACE_MINUTE_S`] wall seconds, while `D`, `Q`, `Q̂` keep their
//! wall-clock values — exactly the compression the paper applies so three
//! trace days fit in a 7.2-hour experiment. Helpers here build the
//! compressed load curves and the paper-configured controllers.

// Scenario construction quantises trace time into whole slots.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
use crate::detailed::per_interval_load;
use pstore_core::controller::baselines::{SimpleController, StaticController};
use pstore_core::controller::forecaster::{OracleForecaster, SparForecaster};
use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
use pstore_core::controller::reactive::{ReactiveConfig, ReactiveController};
use pstore_core::params::SystemParams;
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_forecast::generators::B2wLoadModel;
use pstore_forecast::spar::SparConfig;
use pstore_forecast::TimeSeries;

/// Wall seconds per trace minute under the paper's 10x speed-up.
pub const TRACE_MINUTE_S: f64 = 6.0;

/// Peak transaction rate of the compressed benchmark (txn/s); the paper's
/// Fig 9 peaks near 2 500 txn/s.
pub const PEAK_TXN_RATE: f64 = 2_500.0;

/// Training days used to fit SPAR before the evaluation window (§7).
pub const TRAINING_DAYS: usize = 28;

/// A full experiment trace: per-minute request curve plus the derived
/// wall-second transaction curve and per-tick series.
#[derive(Debug, Clone)]
pub struct ExperimentTrace {
    /// Per-trace-minute load (txn/s units after scaling), training + eval.
    pub minutes: TimeSeries,
    /// First evaluation minute (end of the training prefix).
    pub eval_start_min: usize,
    /// Per-wall-second txn/s curve for the evaluation window, compressed
    /// 10x (6 wall-seconds per trace minute).
    pub wall_seconds: Vec<f64>,
}

impl ExperimentTrace {
    /// Builds a trace with `eval_days` of evaluation data after the
    /// standard training prefix, using the synthetic B2W model.
    pub fn b2w(eval_days: usize, seed: u64) -> Self {
        Self::from_model(
            &B2wLoadModel {
                seed,
                ..B2wLoadModel::default()
            },
            eval_days,
        )
    }

    /// Builds a trace from a custom load model.
    pub fn from_model(model: &B2wLoadModel, eval_days: usize) -> Self {
        let total_days = TRAINING_DAYS + eval_days;
        let raw = model.generate(total_days);
        // Scale requests/minute to txn/s so the evaluation peak lands at
        // PEAK_TXN_RATE.
        let eval_start_min = TRAINING_DAYS * 1440;
        let peak = raw.values()[eval_start_min..]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        let minutes = raw.scaled(PEAK_TXN_RATE / peak);
        let wall_seconds = compress_minutes(&minutes.values()[eval_start_min..]);
        ExperimentTrace {
            minutes,
            eval_start_min,
            wall_seconds,
        }
    }

    /// The per-minute training prefix (txn/s units).
    pub fn training_minutes(&self) -> &[f64] {
        &self.minutes.values()[..self.eval_start_min]
    }

    /// The per-minute evaluation window (txn/s units).
    pub fn eval_minutes(&self) -> &[f64] {
        &self.minutes.values()[self.eval_start_min..]
    }
}

/// Expands a per-trace-minute curve into a per-wall-second curve under the
/// 10x compression (each minute becomes [`TRACE_MINUTE_S`] seconds).
pub fn compress_minutes(minutes: &[f64]) -> Vec<f64> {
    let per_min = TRACE_MINUTE_S as usize;
    let mut out = Vec::with_capacity(minutes.len() * per_min);
    for w in minutes.windows(2) {
        for k in 0..per_min {
            let f = k as f64 / per_min as f64;
            out.push(w[0] * (1.0 - f) + w[1] * f);
        }
    }
    if let Some(&last) = minutes.last() {
        out.extend(std::iter::repeat_n(last, per_min));
    }
    out
}

/// Ticks (controller intervals) per trace day in the compressed detailed
/// simulation: one tick per 5 trace minutes.
pub const TICKS_PER_DAY: usize = 288;

/// The planner configured for the compressed timeline (30-second wall
/// intervals).
pub fn compressed_planner(params: &SystemParams, q: f64) -> Planner {
    Planner::new(PlannerConfig {
        q,
        d_intervals: params.d.as_secs_f64() / 30.0,
        partitions_per_node: params.partitions_per_node,
        max_machines: params.max_machines,
    })
}

/// SPAR configured for 5-trace-minute ticks (period = 288 ticks per day,
/// `n = 7` days, `m = 6` ticks = 30 trace minutes — the paper's n/m scaled
/// to tick units).
pub fn tick_spar_config() -> SparConfig {
    SparConfig {
        period: TICKS_PER_DAY,
        n_periods: 7,
        m_recent: 6,
        taus: vec![1, 3, 6, 12],
        ridge_lambda: 1e-4,
        max_rows: 20_000,
    }
}

/// The paper-default P-Store controller with a live SPAR forecaster, seeded
/// with the trace's training prefix.
pub fn pstore_spar(
    trace: &ExperimentTrace,
    params: &SystemParams,
) -> PStoreController<SparForecaster> {
    let mut forecaster =
        SparForecaster::new(tick_spar_config(), 7 * TICKS_PER_DAY, 40 * TICKS_PER_DAY);
    let train_ticks = per_tick(trace.training_minutes());
    forecaster.seed(&train_ticks);
    PStoreController::new(
        compressed_planner(params, params.q),
        forecaster,
        PStoreConfig {
            horizon: 48,
            prediction_inflation: 1.15,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: initial_machines_for(trace, params),
        },
    )
}

/// The P-Store controller with a perfect-prediction oracle over the
/// evaluation window.
pub fn pstore_oracle(
    trace: &ExperimentTrace,
    params: &SystemParams,
) -> PStoreController<OracleForecaster> {
    let eval_ticks = per_tick(trace.eval_minutes());
    PStoreController::new(
        compressed_planner(params, params.q),
        OracleForecaster::new(eval_ticks),
        PStoreConfig {
            horizon: 48,
            prediction_inflation: 1.15,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: initial_machines_for(trace, params),
        },
    )
}

/// The E-Store-style reactive baseline with the paper's parameters.
pub fn reactive_default(trace: &ExperimentTrace, params: &SystemParams) -> ReactiveController {
    ReactiveController::new(ReactiveConfig {
        q: params.q,
        q_hat: params.q_hat,
        trigger_fraction: 0.95,
        headroom: 0.10,
        smoothing_window: 3,
        scale_in_patience: 6,
        max_machines: params.max_machines,
        initial_machines: initial_machines_for(trace, params),
    })
}

/// Static allocation at `n` machines.
pub fn static_alloc(n: u32) -> StaticController {
    StaticController::new(n)
}

/// The "Simple" day/night schedule in tick units: `day` machines between
/// 08:00 and 23:00 trace time, `night` otherwise.
pub fn simple_schedule(day: u32, night: u32) -> SimpleController {
    SimpleController::new(TICKS_PER_DAY, 8 * 12, 23 * 12, day, night)
}

/// The planner configured for real-time 5-minute intervals (no 10x
/// compression), as used by the long-horizon §8.3 simulations.
pub fn realtime_planner(params: &SystemParams, q: f64) -> Planner {
    Planner::new(PlannerConfig {
        q,
        d_intervals: params.d.as_secs_f64() / 300.0,
        partitions_per_node: params.partitions_per_node,
        max_machines: params.max_machines,
    })
}

/// P-Store with live SPAR for the slot-based fast simulator: ticks are
/// five real minutes; the forecaster is seeded with `train_minutes`.
pub fn pstore_spar_fast(
    train_minutes: &[f64],
    eval_first_load: f64,
    params: &SystemParams,
    q: f64,
) -> PStoreController<SparForecaster> {
    let mut forecaster =
        SparForecaster::new(tick_spar_config(), 7 * TICKS_PER_DAY, 40 * TICKS_PER_DAY);
    forecaster.seed(&per_tick(train_minutes));
    PStoreController::new(
        realtime_planner(params, q),
        forecaster,
        PStoreConfig {
            horizon: 48,
            prediction_inflation: 1.15,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: ((eval_first_load * 1.15 / q).ceil() as u32)
                .clamp(1, params.max_machines),
        },
    )
}

/// P-Store for the fast simulator with an explicit planner (ablation
/// studies pass planners with modified options).
pub fn pstore_with_planner_fast(
    train_minutes: &[f64],
    eval_first_load: f64,
    params: &SystemParams,
    planner: Planner,
) -> PStoreController<SparForecaster> {
    let q = planner.config().q;
    let mut forecaster =
        SparForecaster::new(tick_spar_config(), 7 * TICKS_PER_DAY, 40 * TICKS_PER_DAY);
    forecaster.seed(&per_tick(train_minutes));
    PStoreController::new(
        planner,
        forecaster,
        PStoreConfig {
            horizon: 48,
            prediction_inflation: 1.15,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: ((eval_first_load * 1.15 / q).ceil() as u32)
                .clamp(1, params.max_machines),
        },
    )
}

/// A greedy-lookahead controller (DP ablation) for the fast simulator.
pub fn greedy_fast(
    train_minutes: &[f64],
    eval_first_load: f64,
    params: &SystemParams,
    q: f64,
) -> pstore_core::controller::GreedyLookahead<SparForecaster> {
    let mut forecaster =
        SparForecaster::new(tick_spar_config(), 7 * TICKS_PER_DAY, 40 * TICKS_PER_DAY);
    forecaster.seed(&per_tick(train_minutes));
    pstore_core::controller::GreedyLookahead::new(
        forecaster,
        48,
        q,
        1.15,
        params.max_machines,
        ((eval_first_load * 1.15 / q).ceil() as u32).clamp(1, params.max_machines),
    )
}

/// P-Store with a perfect oracle for the fast simulator.
pub fn pstore_oracle_fast(
    eval_minutes: &[f64],
    params: &SystemParams,
    q: f64,
) -> PStoreController<OracleForecaster> {
    let first = eval_minutes.first().copied().unwrap_or(0.0);
    PStoreController::new(
        realtime_planner(params, q),
        OracleForecaster::new(per_tick(eval_minutes)),
        PStoreConfig {
            horizon: 48,
            prediction_inflation: 1.15,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: ((first * 1.15 / q).ceil() as u32).clamp(1, params.max_machines),
        },
    )
}

/// Reactive baseline for the fast simulator with a configurable headroom
/// buffer (the knob swept in Fig 12).
pub fn reactive_fast(
    eval_first_load: f64,
    params: &SystemParams,
    headroom: f64,
) -> ReactiveController {
    ReactiveController::new(ReactiveConfig {
        q: params.q,
        q_hat: params.q_hat,
        trigger_fraction: 0.95,
        headroom,
        smoothing_window: 3,
        scale_in_patience: 6,
        max_machines: params.max_machines,
        initial_machines: ((eval_first_load * (1.0 + headroom) / params.q).ceil() as u32)
            .clamp(1, params.max_machines),
    })
}

/// Machines needed for the load at the start of the evaluation window.
fn initial_machines_for(trace: &ExperimentTrace, params: &SystemParams) -> u32 {
    let first = trace.eval_minutes().first().copied().unwrap_or(0.0);
    ((first * 1.15 / params.q).ceil() as u32).clamp(1, params.max_machines)
}

/// Averages a per-minute series into per-tick (5-minute) values.
pub fn per_tick(minutes: &[f64]) -> Vec<f64> {
    minutes
        .chunks(5)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

/// Per-interval loads aligned with the detailed simulator's monitor ticks,
/// for building oracle forecasters from a wall-second curve.
pub fn oracle_ticks(wall_seconds: &[f64], monitor_interval_s: f64) -> Vec<f64> {
    per_interval_load(wall_seconds, monitor_interval_s)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;

    #[test]
    fn trace_compression_preserves_shape() {
        let trace = ExperimentTrace::b2w(1, 77);
        assert_eq!(trace.eval_minutes().len(), 1440);
        assert_eq!(trace.wall_seconds.len(), 1440 * 6);
        // Peak scaled to the target rate.
        let peak = trace.eval_minutes().iter().copied().fold(0.0, f64::max);
        assert!((peak - PEAK_TXN_RATE).abs() < 1e-6);
        // Compressed curve interpolates between the minute values.
        let peak_wall = trace.wall_seconds.iter().copied().fold(0.0, f64::max);
        assert!((peak_wall - PEAK_TXN_RATE).abs() / PEAK_TXN_RATE < 0.01);
    }

    #[test]
    fn training_prefix_is_four_weeks() {
        let trace = ExperimentTrace::b2w(2, 3);
        assert_eq!(trace.training_minutes().len(), TRAINING_DAYS * 1440);
        assert_eq!(trace.eval_minutes().len(), 2 * 1440);
    }

    #[test]
    fn pstore_spar_controller_is_ready_after_seeding() {
        let trace = ExperimentTrace::b2w(1, 5);
        let params = SystemParams::b2w_paper();
        let mut c = pstore_spar(&trace, &params);
        assert!(c.forecaster_mut().is_ready());
    }

    #[test]
    fn per_tick_downsampling() {
        let mins: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ticks = per_tick(&mins);
        assert_eq!(ticks, vec![2.0, 7.0]);
    }

    #[test]
    fn fast_sim_builders_produce_working_controllers() {
        use crate::fast::{run_fast, FastSimConfig};
        let params = SystemParams::b2w_paper();
        let cfg = FastSimConfig {
            params: params.clone(),
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: false,
            prov_events: false,
        };
        // Short synthetic month: train + 3 eval days.
        let raw = pstore_forecast::generators::B2wLoadModel {
            seed: 8,
            ..Default::default()
        }
        .generate(TRAINING_DAYS + 3);
        let eval_start = TRAINING_DAYS * 1440;
        let scaled = raw.scaled(
            2_500.0
                / raw.values()[eval_start..]
                    .iter()
                    .copied()
                    .fold(0.0, f64::max),
        );
        let train = &scaled.values()[..eval_start];
        let eval = &scaled.values()[eval_start..];

        let spar = run_fast(
            &cfg,
            eval,
            &mut pstore_spar_fast(train, eval[0], &params, params.q),
        );
        assert!(spar.reconfigurations > 0);
        let planner = realtime_planner(&params, params.q);
        let custom = run_fast(
            &cfg,
            eval,
            &mut pstore_with_planner_fast(train, eval[0], &params, planner),
        );
        assert!(custom.reconfigurations > 0);
        // Same planner/forecaster settings -> same behaviour.
        assert_eq!(spar.cost_machine_slots, custom.cost_machine_slots);

        let greedy = run_fast(
            &cfg,
            eval,
            &mut greedy_fast(train, eval[0], &params, params.q),
        );
        assert!(
            greedy.cost_machine_slots >= spar.cost_machine_slots,
            "greedy {} should cost at least the DP {}",
            greedy.cost_machine_slots,
            spar.cost_machine_slots
        );

        let reactive = run_fast(&cfg, eval, &mut reactive_fast(eval[0], &params, 0.1));
        assert!(reactive.total_slots == eval.len() as u64);
    }

    #[test]
    fn initial_machines_cover_the_starting_load() {
        let trace = ExperimentTrace::b2w(1, 9);
        let params = SystemParams::b2w_paper();
        let n = initial_machines_for(&trace, &params);
        let first = trace.eval_minutes()[0];
        assert!(n as f64 * params.q >= first);
    }
}
