//! Property tests for the least-squares solver.

use proptest::prelude::*;
use pstore_forecast::linalg::{cholesky, lstsq, ridge, Matrix};

/// Builds a well-conditioned random design matrix by perturbing an
/// identity-like pattern.
fn design(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut idx = 0;
    for r in 0..rows {
        for c in 0..cols {
            let noise = vals[idx % vals.len()];
            idx += 1;
            m[(r, c)] = noise + if r % cols == c { 3.0 } else { 0.0 };
        }
    }
    m
}

proptest! {
    /// The solver recovers the generating coefficients of a consistent
    /// (noise-free) overdetermined system.
    #[test]
    fn lstsq_recovers_exact_solutions(
        raw in prop::collection::vec(-1.0f64..1.0, 64),
        coef in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let a = design(12, 4, &raw);
        let b = a.mul_vec(&coef);
        let x = lstsq(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&coef) {
            prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    /// Least-squares residuals are orthogonal to the column space:
    /// A^T (A x - b) = 0.
    #[test]
    fn residual_is_orthogonal_to_columns(
        raw in prop::collection::vec(-1.0f64..1.0, 64),
        b in prop::collection::vec(-10.0f64..10.0, 12),
    ) {
        let a = design(12, 4, &raw);
        let x = lstsq(&a, &b).unwrap();
        let pred = a.mul_vec(&x);
        let resid: Vec<f64> = pred.iter().zip(&b).map(|(p, y)| p - y).collect();
        let at_r = a.transpose().mul_vec(&resid);
        for v in at_r {
            prop_assert!(v.abs() < 1e-6, "A^T r component {v}");
        }
    }

    /// Ridge shrinks coefficient norms monotonically in lambda.
    #[test]
    fn ridge_shrinks_with_lambda(
        raw in prop::collection::vec(-1.0f64..1.0, 64),
        b in prop::collection::vec(-10.0f64..10.0, 12),
    ) {
        let a = design(12, 4, &raw);
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        let n0 = norm(&ridge(&a, &b, 0.0).unwrap());
        let n1 = norm(&ridge(&a, &b, 1.0).unwrap());
        let n2 = norm(&ridge(&a, &b, 100.0).unwrap());
        prop_assert!(n1 <= n0 + 1e-9);
        prop_assert!(n2 <= n1 + 1e-9);
    }

    /// Cholesky factors reconstruct SPD matrices built as G G^T + eps I.
    #[test]
    fn cholesky_reconstructs_spd(raw in prop::collection::vec(-1.0f64..1.0, 16)) {
        let g = Matrix::from_rows(4, 4, &raw);
        let mut spd = g.mul(&g.transpose());
        for i in 0..4 {
            spd[(i, i)] += 0.5;
        }
        let l = cholesky(&spd).expect("SPD by construction");
        let recon = l.mul(&l.transpose());
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((recon[(r, c)] - spd[(r, c)]).abs() < 1e-9);
            }
        }
    }
}
