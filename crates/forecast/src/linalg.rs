//! Minimal dense linear algebra used by the forecasting models.
//!
//! The forecasting models in this crate (AR, ARMA, SPAR) are all fit with
//! linear least squares over modest design matrices (tens of columns,
//! thousands of rows), so a small, dependency-free implementation is both
//! sufficient and easy to audit. The solver uses Householder QR, which is
//! numerically robust for the mildly ill-conditioned design matrices that
//! arise when periodic lag columns are strongly correlated.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns a view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect()
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let src = other.row(k);
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        out
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Error returned when a least-squares system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The design matrix has fewer rows than columns.
    Underdetermined {
        /// Number of observations (rows).
        rows: usize,
        /// Number of parameters (columns).
        cols: usize,
    },
    /// The design matrix is (numerically) rank deficient.
    RankDeficient {
        /// The column at which a negligible pivot was found.
        column: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Underdetermined { rows, cols } => write!(
                f,
                "least-squares system is underdetermined: {rows} rows < {cols} cols"
            ),
            SolveError::RankDeficient { column } => {
                write!(f, "design matrix is rank deficient at column {column}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the linear least-squares problem `min ||a x - b||` using
/// Householder QR with column-pivot-free elimination.
///
/// Returns the coefficient vector `x` of length `a.cols()`.
///
/// # Errors
/// Returns [`SolveError::Underdetermined`] when there are fewer observations
/// than parameters and [`SolveError::RankDeficient`] when a pivot collapses
/// numerically (collinear regressors).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    assert_eq!(a.rows(), b.len(), "rhs length must match rows");
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        return Err(SolveError::Underdetermined { rows: m, cols: n });
    }

    // Work on copies: `r` is reduced in place to the upper-triangular factor
    // while the same Householder reflections are applied to `qtb`.
    let mut r = a.clone();
    let mut qtb = b.to_vec();

    for k in 0..n {
        // Householder vector for column k, rows k..m.
        let mut norm = 0.0f64;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-12 {
            return Err(SolveError::RankDeficient { column: k });
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-24 {
            // Column already reduced; just set the diagonal.
            r[(k, k)] = alpha;
            continue;
        }

        // Apply the reflection H = I - 2 v v^T / (v^T v) to the trailing
        // columns of `r` and to `qtb`.
        for c in k..n {
            let mut dot = 0.0;
            for (vi, i) in v.iter().zip(k..m) {
                dot += vi * r[(i, c)];
            }
            let scale = 2.0 * dot / vnorm2;
            for (vi, i) in v.iter().zip(k..m) {
                r[(i, c)] -= scale * vi;
            }
        }
        let mut dot = 0.0;
        for (vi, i) in v.iter().zip(k..m) {
            dot += vi * qtb[i];
        }
        let scale = 2.0 * dot / vnorm2;
        for (vi, i) in v.iter().zip(k..m) {
            qtb[i] -= scale * vi;
        }
    }

    // Back substitution on the upper-triangular system R x = Q^T b.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut s = qtb[k];
        for c in k + 1..n {
            s -= r[(k, c)] * x[c];
        }
        let diag = r[(k, k)];
        if diag.abs() < 1e-12 {
            return Err(SolveError::RankDeficient { column: k });
        }
        x[k] = s / diag;
    }
    Ok(x)
}

/// Solves the ridge-regularised least squares `min ||a x - b||^2 + lambda ||x||^2`.
///
/// Implemented by augmenting the design matrix with `sqrt(lambda) * I`, which
/// keeps the QR path and guarantees full rank for any `lambda > 0`. Useful
/// when periodic lag columns are nearly collinear (e.g. an almost perfectly
/// periodic training signal).
///
/// # Errors
/// Propagates [`SolveError`] from the underlying solver (only possible when
/// `lambda == 0`).
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, SolveError> {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return lstsq(a, b);
    }
    let (m, n) = (a.rows(), a.cols());
    let mut aug = Matrix::zeros(m + n, n);
    for r in 0..m {
        aug.row_mut(r).copy_from_slice(a.row(r));
    }
    let s = lambda.sqrt();
    for k in 0..n {
        aug[(m + k, k)] = s;
    }
    let mut rhs = b.to_vec();
    rhs.resize(m + n, 0.0);
    lstsq(&aug, &rhs)
}

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `L L^T = a`, or `None` if the
/// matrix is not positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn identity_mul_vec_is_noop() {
        let i = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.mul_vec(&v), v);
    }

    #[test]
    fn mul_matches_hand_computed_product() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.mul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lstsq_solves_exact_square_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, -1.0]);
        let x = lstsq(&a, &[5.0, 1.0]).unwrap();
        assert_close(x[0], 2.0, 1e-10);
        assert_close(x[1], 1.0, 1e-10);
    }

    #[test]
    fn lstsq_recovers_overdetermined_line_fit() {
        // y = 3x + 2 with exact observations: least squares must recover it.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut a = Matrix::zeros(xs.len(), 2);
        let mut b = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = x;
            a[(i, 1)] = 1.0;
            b.push(3.0 * x + 2.0);
        }
        let coef = lstsq(&a, &b).unwrap();
        assert_close(coef[0], 3.0, 1e-10);
        assert_close(coef[1], 2.0, 1e-10);
    }

    #[test]
    fn lstsq_minimises_residual_on_noisy_fit() {
        // Perturb one observation; the residual of the LS solution must be
        // no larger than that of the true generating coefficients.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let mut a = Matrix::zeros(xs.len(), 2);
        let mut b = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = x;
            a[(i, 1)] = 1.0;
            b.push(3.0 * x + 2.0 + if i == 2 { 0.5 } else { 0.0 });
        }
        let coef = lstsq(&a, &b).unwrap();
        let resid = |c: &[f64]| -> f64 {
            a.mul_vec(c)
                .iter()
                .zip(&b)
                .map(|(p, y)| (p - y).powi(2))
                .sum()
        };
        assert!(resid(&coef) <= resid(&[3.0, 2.0]) + 1e-12);
    }

    #[test]
    fn lstsq_rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            lstsq(&a, &[0.0, 0.0]),
            Err(SolveError::Underdetermined { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn lstsq_rejects_rank_deficient() {
        // Two identical columns.
        let a = Matrix::from_rows(3, 2, &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0, 3.0]),
            Err(SolveError::RankDeficient { .. })
        ));
    }

    #[test]
    fn ridge_handles_collinear_columns() {
        let a = Matrix::from_rows(3, 2, &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let x = ridge(&a, &[2.0, 4.0, 6.0], 1e-6).unwrap();
        // Symmetric problem: both coefficients near 1.
        assert_close(x[0], 1.0, 1e-3);
        assert_close(x[1], 1.0, 1e-3);
    }

    #[test]
    fn cholesky_factorises_spd_matrix() {
        let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let l = cholesky(&a).unwrap();
        let recon = l.mul(&l.transpose());
        for r in 0..2 {
            for c in 0..2 {
                assert_close(recon[(r, c)], a[(r, c)], 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
