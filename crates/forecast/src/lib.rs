//! Time-series load prediction for P-Store.
//!
//! This crate implements the forecasting half of the P-Store system
//! (SIGMOD 2018): regularly sampled load series, accuracy metrics, the
//! SPAR / AR / ARMA prediction models of §5, an online self-refitting
//! predictor (§6's "active learning"), and seeded synthetic generators that
//! stand in for the proprietary B2W and Wikipedia traces.
//!
//! # Quick example
//!
//! ```
//! use pstore_forecast::generators::B2wLoadModel;
//! use pstore_forecast::spar::{SparConfig, SparModel};
//! use pstore_forecast::model::LoadPredictor;
//!
//! // Five weeks of synthetic per-minute retail load.
//! let load = B2wLoadModel::default().generate(35);
//! let train = 28 * 1440;
//! let model = SparModel::fit(&load.values()[..train], &SparConfig::b2w_default()).unwrap();
//! // Forecast one hour ahead from the end of week 4.
//! let next_hour = model.predict_horizon(&load.values()[..train], 60);
//! assert_eq!(next_hour.len(), 60);
//! ```

#![warn(missing_docs)]

pub mod ar;
pub mod arma;
pub mod decompose;
pub mod eval;
pub mod generators;
pub mod holt_winters;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod online;
pub mod series;
pub mod spar;

pub use ar::{ArConfig, ArModel};
pub use arma::{ArmaConfig, ArmaModel};
pub use holt_winters::{HoltWintersConfig, HoltWintersModel};
pub use model::{FitError, LoadPredictor};
pub use online::OnlinePredictor;
pub use series::TimeSeries;
pub use spar::{SparConfig, SparModel};
