//! Rolling-origin ("walk-forward") forecast evaluation.
//!
//! The paper evaluates predictors by sweeping the forecast origin across a
//! held-out window and reporting mean relative error per forecasting
//! period tau (Figs 5b, 6b). This module packages that procedure so
//! experiments, examples and downstream users measure models the same way.

use crate::metrics::{mae, mre, rmse};
use crate::model::LoadPredictor;

/// Accuracy of one model at one forecasting period.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonAccuracy {
    /// Forecasting period (slots ahead).
    pub tau: usize,
    /// Mean relative error (the paper's metric), as a fraction.
    pub mre: f64,
    /// Mean absolute error, in load units.
    pub mae: f64,
    /// Root mean squared error, in load units.
    pub rmse: f64,
    /// Number of (prediction, actual) pairs evaluated.
    pub samples: usize,
}

/// Evaluation settings.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// First index of `data` treated as held-out (origins never look ahead
    /// of their own position, so indices before this are training-only).
    pub eval_start: usize,
    /// Stride between forecast origins (1 = every slot; larger = faster).
    pub origin_stride: usize,
}

impl EvalConfig {
    /// Evaluates every origin in the held-out region.
    pub fn dense(eval_start: usize) -> Self {
        EvalConfig {
            eval_start,
            origin_stride: 1,
        }
    }
}

/// Runs rolling-origin evaluation of `model` on `data` at each `tau`.
///
/// For every origin `t` (stepping by `origin_stride`) with
/// `t >= max(eval_start, min_history)` and `t - 1 + tau < data.len()`, the
/// model predicts `tau` slots ahead from `data[..t]` and the prediction is
/// paired with `data[t - 1 + tau]`.
///
/// # Panics
/// Panics if `taus` is empty, any tau is zero, or the configuration leaves
/// no origins to evaluate.
pub fn rolling_accuracy(
    model: &dyn LoadPredictor,
    data: &[f64],
    taus: &[usize],
    cfg: &EvalConfig,
) -> Vec<HorizonAccuracy> {
    assert!(!taus.is_empty(), "need at least one tau");
    assert!(taus.iter().all(|&t| t >= 1), "taus must be >= 1");
    assert!(cfg.origin_stride >= 1, "stride must be >= 1");

    taus.iter()
        .map(|&tau| {
            let mut preds = Vec::new();
            let mut actuals = Vec::new();
            let mut t = cfg.eval_start.max(model.min_history());
            while t - 1 + tau < data.len() {
                preds.push(model.predict(&data[..t], tau));
                actuals.push(data[t - 1 + tau]);
                t += cfg.origin_stride;
            }
            assert!(
                !preds.is_empty(),
                "no origins to evaluate at tau = {tau}; series too short"
            );
            HorizonAccuracy {
                tau,
                mre: mre(&preds, &actuals).unwrap_or(f64::NAN),
                mae: mae(&preds, &actuals),
                rmse: rmse(&preds, &actuals),
                samples: preds.len(),
            }
        })
        .collect()
}

/// Compares several models at a single tau; returns `(name, MRE)` pairs in
/// the models' order.
pub fn compare_models(
    models: &[&dyn LoadPredictor],
    data: &[f64],
    tau: usize,
    cfg: &EvalConfig,
) -> Vec<(String, f64)> {
    models
        .iter()
        .map(|m| {
            let acc = rolling_accuracy(*m, data, &[tau], cfg);
            (m.name().to_string(), acc[0].mre)
        })
        .collect()
}

/// Calibrates the prediction-inflation factor the controller applies
/// (§8.2 inflates by a fixed 15%): the smallest multiplier `f` such that
/// `f * prediction >= actual` in at least `quantile` of rolling-origin
/// evaluations at horizon `tau`.
///
/// # Panics
/// Panics if `quantile` is outside `(0, 1]` or no origins are available.
pub fn suggest_inflation(
    model: &dyn LoadPredictor,
    data: &[f64],
    tau: usize,
    quantile: f64,
    cfg: &EvalConfig,
) -> f64 {
    assert!(quantile > 0.0 && quantile <= 1.0, "quantile in (0, 1]");
    assert!(tau >= 1, "tau must be >= 1");
    let mut ratios = Vec::new();
    let mut t = cfg.eval_start.max(model.min_history());
    while t - 1 + tau < data.len() {
        let pred = model.predict(&data[..t], tau);
        let actual = data[t - 1 + tau];
        if pred > 1e-9 {
            ratios.push(actual / pred);
        }
        t += cfg.origin_stride;
    }
    assert!(!ratios.is_empty(), "no origins to calibrate on");
    ratios.sort_by(f64::total_cmp);
    // quantile is in [0, 1] and ceil() >= 0, so the cast is exact.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((ratios.len() as f64 * quantile).ceil() as usize).clamp(1, ratios.len()) - 1;
    ratios[idx].max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SeasonalNaive;

    fn periodic(period: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| 100.0 + 20.0 * ((i % period) as f64))
            .collect()
    }

    #[test]
    fn perfect_model_scores_zero() {
        let data = periodic(12, 12 * 8);
        let model = SeasonalNaive::new(12);
        let acc = rolling_accuracy(&model, &data, &[1, 3, 6], &EvalConfig::dense(12 * 4));
        assert_eq!(acc.len(), 3);
        for a in &acc {
            assert!(a.mre < 1e-12, "tau {}: {}", a.tau, a.mre);
            assert!(a.samples > 0);
        }
    }

    #[test]
    fn stride_reduces_samples_not_meaning() {
        let data = periodic(12, 12 * 10);
        let model = SeasonalNaive::new(12);
        let dense = rolling_accuracy(&model, &data, &[2], &EvalConfig::dense(48));
        let sparse = rolling_accuracy(
            &model,
            &data,
            &[2],
            &EvalConfig {
                eval_start: 48,
                origin_stride: 5,
            },
        );
        assert!(sparse[0].samples < dense[0].samples);
        assert!((sparse[0].mre - dense[0].mre).abs() < 1e-12);
    }

    #[test]
    fn compare_models_preserves_order_and_names() {
        let data = periodic(12, 12 * 8);
        let good = SeasonalNaive::new(12);
        let bad = SeasonalNaive::new(11); // wrong period
        let out = compare_models(&[&good, &bad], &data, 1, &EvalConfig::dense(12 * 5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "seasonal-naive");
        assert!(out[0].1 < out[1].1, "correct period should score better");
    }

    #[test]
    fn inflation_covers_the_requested_quantile() {
        // A model that systematically underpredicts by 20% needs ~1.25x.
        struct Low;
        impl crate::model::LoadPredictor for Low {
            fn min_history(&self) -> usize {
                1
            }
            fn predict(&self, history: &[f64], _tau: usize) -> f64 {
                history.last().unwrap() * 0.8
            }
            fn name(&self) -> &str {
                "low"
            }
        }
        let data = vec![100.0; 200];
        let f = suggest_inflation(&Low, &data, 1, 0.99, &EvalConfig::dense(50));
        assert!((f - 1.25).abs() < 1e-9, "factor {f}");
        // A perfect model needs no inflation.
        let naive = SeasonalNaive::new(1);
        let f = suggest_inflation(&naive, &data, 1, 0.99, &EvalConfig::dense(50));
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn rejects_empty_evaluation_windows() {
        let data = periodic(12, 24);
        let model = SeasonalNaive::new(12);
        let _ = rolling_accuracy(&model, &data, &[30], &EvalConfig::dense(20));
    }
}
