//! Sparse Periodic Auto-Regression (SPAR), the default P-Store predictor.
//!
//! Equation (8) of the paper models the load `tau` slots ahead as a linear
//! combination of the values at the same phase in the `n` previous periods
//! plus the offset of the `m` most recent observations from their expected
//! (periodic-average) level:
//!
//! ```text
//! y(t + tau) = sum_{k=1..n} a_k * y(t + tau - k*T)
//!            + sum_{j=1..m} b_j * dy(t - j)
//!
//! dy(t - j)  = y(t - j) - (1/n) * sum_{k=1..n} y(t - j - k*T)
//! ```
//!
//! The periodic terms capture the diurnal shape; the offset terms capture
//! how far today deviates from an average day. Coefficients are fit with
//! linear least squares over the training window, pooling rows across a
//! configurable set of forecast offsets so one coefficient vector serves
//! the whole planning horizon.
//!
//! ```
//! use pstore_forecast::spar::{SparConfig, SparModel};
//! use pstore_forecast::model::LoadPredictor;
//! // A perfectly daily signal is predicted exactly.
//! let cfg = SparConfig { period: 48, n_periods: 2, m_recent: 4,
//!                        taus: vec![1], ridge_lambda: 1e-6, max_rows: 4000 };
//! let data: Vec<f64> = (0..48 * 8)
//!     .map(|i| 100.0 + ((i % 48) as f64))
//!     .collect();
//! let model = SparModel::fit(&data[..48 * 6], &cfg).unwrap();
//! let pred = model.predict(&data, 1);
//! assert!((pred - data[data.len() - 48]).abs() < 1e-6);
//! ```

use crate::linalg::{ridge, Matrix};
use crate::model::{FitError, LoadPredictor};

/// Configuration for a SPAR fit.
#[derive(Debug, Clone)]
pub struct SparConfig {
    /// Period `T` in slots (1440 for per-minute data with a daily cycle,
    /// 168 for hourly data with a weekly cycle, ...).
    pub period: usize,
    /// Number of previous periods `n` used by the periodic component.
    pub n_periods: usize,
    /// Number of recent offsets `m` used by the transient component.
    pub m_recent: usize,
    /// Forecast offsets pooled into the training set. Empty means `{1}`.
    pub taus: Vec<usize>,
    /// Ridge regularisation strength (periodic lag columns of a strongly
    /// periodic signal are highly correlated).
    pub ridge_lambda: f64,
    /// Upper bound on training rows; origins are subsampled with a uniform
    /// stride to respect it.
    pub max_rows: usize,
}

impl SparConfig {
    /// The paper's B2W setting: per-minute slots, daily period `T = 1440`,
    /// `n = 7`, `m = 30` (§5).
    pub fn b2w_default() -> Self {
        SparConfig {
            period: 1440,
            n_periods: 7,
            m_recent: 30,
            taus: vec![1, 15, 30, 45, 60],
            ridge_lambda: 1e-4,
            max_rows: 20_000,
        }
    }

    /// An hourly-data setting with a weekly period (`T = 168`), matching the
    /// Wikipedia experiment (§5).
    pub fn hourly_weekly() -> Self {
        SparConfig {
            period: 168,
            n_periods: 4,
            m_recent: 24,
            taus: vec![1, 2, 3, 4, 5, 6],
            ridge_lambda: 1e-4,
            max_rows: 20_000,
        }
    }

    /// Minimum history length required for fitting or predicting.
    pub fn min_history(&self) -> usize {
        self.n_periods * self.period + self.m_recent + 1
    }
}

impl Default for SparConfig {
    fn default() -> Self {
        Self::b2w_default()
    }
}

/// A fitted SPAR model.
#[derive(Debug, Clone)]
pub struct SparModel {
    config: SparConfig,
    /// `a_k` coefficients, `a[k-1]` multiplies `y(t + tau - k*T)`.
    a: Vec<f64>,
    /// `b_j` coefficients, `b[j-1]` multiplies `dy(t - j)`.
    b: Vec<f64>,
}

impl SparModel {
    /// Fits SPAR coefficients on `train` with least squares (Eq 8).
    ///
    /// # Errors
    /// Returns [`FitError::NotEnoughData`] if the training window is shorter
    /// than `n*T + m` plus the largest pooled `tau`, or
    /// [`FitError::Numerical`] if the regression is degenerate.
    pub fn fit(train: &[f64], config: &SparConfig) -> Result<Self, FitError> {
        let cfg = config.clone();
        validate(&cfg);
        let taus = if cfg.taus.is_empty() {
            vec![1]
        } else {
            cfg.taus.clone()
        };
        let max_tau = taus.iter().max().copied().unwrap_or(1);
        let p = cfg.n_periods * cfg.period;
        // Forecast origin t needs: t - m - n*T >= 0 and t + tau < len and
        // t + tau - n*T >= 0. The first condition dominates.
        let first_origin = p + cfg.m_recent;
        let required = first_origin + max_tau + cfg.n_periods + cfg.m_recent + 1;
        if train.len() < required {
            return Err(FitError::NotEnoughData {
                required,
                available: train.len(),
            });
        }

        let last_origin = train.len() - 1 - max_tau;
        let origins_available = last_origin - first_origin + 1;
        let rows_wanted = cfg.max_rows.max(cfg.n_periods + cfg.m_recent + 1);
        let stride = (origins_available * taus.len())
            .div_ceil(rows_wanted)
            .max(1);

        let cols = cfg.n_periods + cfg.m_recent;
        let mut rows_feat: Vec<f64> = Vec::new();
        let mut targets: Vec<f64> = Vec::new();
        for t in (first_origin..=last_origin).step_by(stride) {
            let offsets = recent_offsets(train, t, &cfg);
            for &tau in &taus {
                for k in 1..=cfg.n_periods {
                    rows_feat.push(train[t + tau - k * cfg.period]);
                }
                rows_feat.extend_from_slice(&offsets);
                targets.push(train[t + tau]);
            }
        }
        let nrows = targets.len();
        if nrows < cols {
            return Err(FitError::NotEnoughData {
                required,
                available: train.len(),
            });
        }
        let a = Matrix::from_rows(nrows, cols, &rows_feat);
        let x = ridge(&a, &targets, cfg.ridge_lambda)
            .map_err(|e| FitError::Numerical(e.to_string()))?;
        Ok(SparModel {
            a: x[..cfg.n_periods].to_vec(),
            b: x[cfg.n_periods..].to_vec(),
            config: cfg,
        })
    }

    /// The periodic coefficients `a_k`.
    pub fn periodic_coefficients(&self) -> &[f64] {
        &self.a
    }

    /// The recent-offset coefficients `b_j`.
    pub fn recent_coefficients(&self) -> &[f64] {
        &self.b
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &SparConfig {
        &self.config
    }
}

fn validate(cfg: &SparConfig) {
    assert!(cfg.period > 0, "period must be positive");
    assert!(cfg.n_periods > 0, "n_periods must be positive");
    assert!(cfg.m_recent > 0, "m_recent must be positive");
    assert!(
        cfg.taus.iter().all(|&t| t >= 1 && t <= cfg.period),
        "all taus must be in 1..=period"
    );
}

/// The `dy(t - j)` features for `j = 1..=m` at forecast origin `t`
/// (an index into `data`, with `data[t]` the latest observation).
fn recent_offsets(data: &[f64], t: usize, cfg: &SparConfig) -> Vec<f64> {
    (1..=cfg.m_recent)
        .map(|j| {
            let idx = t - j;
            let periodic_mean = (1..=cfg.n_periods)
                .map(|k| data[idx - k * cfg.period])
                .sum::<f64>()
                / cfg.n_periods as f64;
            data[idx] - periodic_mean
        })
        .collect()
}

impl LoadPredictor for SparModel {
    fn min_history(&self) -> usize {
        self.config.min_history()
    }

    fn predict(&self, history: &[f64], tau: usize) -> f64 {
        assert!(tau >= 1, "tau must be at least 1");
        assert!(
            tau <= self.config.period,
            "tau ({tau}) beyond one period ({}) is not supported by SPAR",
            self.config.period
        );
        assert!(
            history.len() >= self.min_history(),
            "history ({}) shorter than required ({})",
            history.len(),
            self.min_history()
        );
        let t = history.len() - 1; // forecast origin index
        let mut y = 0.0;
        for (k, a_k) in self.a.iter().enumerate() {
            // Periodic lag y(t + tau - k*T); k*T >= T >= tau keeps it in
            // the past.
            let idx = t + tau - (k + 1) * self.config.period;
            y += a_k * history[idx];
        }
        let offsets = recent_offsets(history, t, &self.config);
        for (b_j, dy) in self.b.iter().zip(&offsets) {
            y += b_j * dy;
        }
        y
    }

    fn predict_horizon(&self, history: &[f64], h: usize) -> Vec<f64> {
        // Offsets are shared by every tau; compute them once.
        assert!(
            h <= self.config.period,
            "horizon beyond one period is not supported by SPAR"
        );
        assert!(
            history.len() >= self.min_history(),
            "history shorter than required"
        );
        let t = history.len() - 1;
        let offsets = recent_offsets(history, t, &self.config);
        let transient: f64 = self.b.iter().zip(&offsets).map(|(b, d)| b * d).sum();
        (1..=h)
            .map(|tau| {
                let periodic: f64 = self
                    .a
                    .iter()
                    .enumerate()
                    .map(|(k, a_k)| a_k * history[t + tau - (k + 1) * self.config.period])
                    .sum();
                periodic + transient
            })
            .collect()
    }

    fn name(&self) -> &str {
        "SPAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mre;

    /// A noiseless signal that is exactly periodic with period `t`.
    fn periodic_signal(t: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let phase = (i % t) as f64 / t as f64;
                100.0 + 50.0 * (2.0 * std::f64::consts::PI * phase).sin()
            })
            .collect()
    }

    fn small_cfg() -> SparConfig {
        SparConfig {
            period: 48,
            n_periods: 3,
            m_recent: 6,
            taus: vec![1, 4, 8],
            ridge_lambda: 1e-6,
            max_rows: 5_000,
        }
    }

    #[test]
    fn exact_on_noiseless_periodic_signal() {
        let cfg = small_cfg();
        let data = periodic_signal(cfg.period, cfg.period * 10);
        let train_len = cfg.period * 8;
        let model = SparModel::fit(&data[..train_len], &cfg).unwrap();
        // predict(history = ..t, tau) targets data[t - 1 + tau].
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for t in train_len..data.len() - 8 {
            for tau in [1usize, 8] {
                preds.push(model.predict(&data[..t], tau));
                actuals.push(data[t - 1 + tau]);
            }
        }
        let err = mre(&preds, &actuals).unwrap();
        assert!(err < 1e-6, "MRE on noiseless periodic signal: {err}");
    }

    #[test]
    fn transient_offsets_improve_shifted_days() {
        // Periodic base with day-level amplitude variation in training (so
        // the offset terms carry signal), plus a +20% shift on the final
        // day: the offset terms should pull predictions up. Compare against
        // a purely periodic model (b = 0).
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(9);
        let mut data = periodic_signal(cfg.period, cfg.period * 10);
        for day in 0..10 {
            let factor: f64 = 1.0 + rng.random_range(-0.1..0.1);
            for v in &mut data[day * cfg.period..(day + 1) * cfg.period] {
                *v *= factor;
            }
        }
        let shift_start = cfg.period * 9;
        for v in &mut data[shift_start..] {
            *v *= 1.2;
        }
        let train_len = cfg.period * 8;
        let model = SparModel::fit(&data[..train_len], &cfg).unwrap();

        let mut zeroed = model.clone();
        zeroed.b.iter_mut().for_each(|b| *b = 0.0);

        let origin = shift_start + cfg.m_recent + 2;
        let (mut err_full, mut err_periodic) = (0.0, 0.0);
        for t in origin..data.len() - 4 {
            let actual = data[t - 1 + 4];
            err_full += (model.predict(&data[..t], 4) - actual).abs();
            err_periodic += (zeroed.predict(&data[..t], 4) - actual).abs();
        }
        assert!(
            err_full < err_periodic,
            "offset terms should help: {err_full} vs {err_periodic}"
        );
    }

    #[test]
    fn horizon_matches_point_predictions() {
        let cfg = small_cfg();
        let data = periodic_signal(cfg.period, cfg.period * 9);
        let model = SparModel::fit(&data[..cfg.period * 7], &cfg).unwrap();
        let hist = &data[..cfg.period * 8];
        let horizon = model.predict_horizon(hist, 12);
        for (i, v) in horizon.iter().enumerate() {
            let point = model.predict(hist, i + 1);
            assert!((point - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_insufficient_history() {
        let cfg = small_cfg();
        let data = periodic_signal(cfg.period, cfg.period * 2);
        assert!(matches!(
            SparModel::fit(&data, &cfg),
            Err(FitError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn periodic_coefficients_sum_near_one_for_periodic_signal() {
        // For a purely periodic signal the periodic terms must reproduce the
        // signal, so sum(a_k) ~ 1 (any convex combination of identical
        // periodic lags works; ridge pulls towards the symmetric one).
        let cfg = small_cfg();
        let data = periodic_signal(cfg.period, cfg.period * 10);
        let model = SparModel::fit(&data[..cfg.period * 8], &cfg).unwrap();
        let sum: f64 = model.periodic_coefficients().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum(a_k) = {sum}");
    }

    #[test]
    #[should_panic(expected = "beyond one period")]
    fn predict_rejects_tau_beyond_period() {
        let cfg = small_cfg();
        let data = periodic_signal(cfg.period, cfg.period * 9);
        let model = SparModel::fit(&data[..cfg.period * 8], &cfg).unwrap();
        let _ = model.predict(&data, cfg.period + 1);
    }

    #[test]
    fn accuracy_decays_gracefully_with_tau_on_noisy_signal() {
        // Add mild noise; MRE at tau=1 should be <= MRE at tau=16 (stale
        // offsets), and both should stay small. Mirrors Fig 5b's trend.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f64> = periodic_signal(cfg.period, cfg.period * 12)
            .into_iter()
            .map(|v| v * (1.0 + rng.random_range(-0.05..0.05)))
            .collect();
        let train_len = cfg.period * 9;
        let model = SparModel::fit(&data[..train_len], &cfg).unwrap();
        let eval = |tau: usize| {
            let mut preds = Vec::new();
            let mut actuals = Vec::new();
            for t in train_len..data.len() - tau {
                preds.push(model.predict(&data[..t], tau));
                actuals.push(data[t - 1 + tau]);
            }
            mre(&preds, &actuals).unwrap()
        };
        let short = eval(1);
        let long = eval(16);
        assert!(short < 0.1, "tau=1 MRE too high: {short}");
        assert!(long < 0.15, "tau=16 MRE too high: {long}");
        assert!(short <= long + 0.01, "short {short} vs long {long}");
    }
}
