//! Seeded synthetic load generators.
//!
//! The paper evaluates on proprietary B2W Digital transaction logs and on
//! Wikipedia page-view dumps. Neither dataset ships with this repository, so
//! these generators synthesise statistically equivalent aggregate load
//! curves (see DESIGN.md §1 for the substitution argument):
//!
//! * [`B2wLoadModel`] — per-minute online-retail load: diurnal wave with a
//!   ~10x peak-to-trough ratio (Fig 1), weekly seasonality, day-to-day
//!   amplitude drift, persistent multiplicative noise, occasional promotion
//!   spikes, and an optional Black-Friday surge (§8.3).
//! * [`WikipediaLoadModel`] — hourly page-view load for an English-like
//!   (strongly periodic) and German-like (noisier) edition (Fig 6).
//! * [`sine_demand`] — the idealised sinusoidal demand of Fig 2.

use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::f64::consts::PI;
use std::time::Duration;

const MINUTES_PER_DAY: usize = 1440;

/// Draws a standard normal variate via Box–Muller.
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Configuration for the synthetic B2W-style retail load.
#[derive(Debug, Clone)]
pub struct B2wLoadModel {
    /// RNG seed; equal seeds give identical traces.
    pub seed: u64,
    /// Trough (overnight) load in requests per minute.
    pub trough: f64,
    /// Peak (afternoon) load in requests per minute.
    pub peak: f64,
    /// Relative weekly modulation amplitude (weekends vs weekdays).
    pub weekly_amplitude: f64,
    /// Standard deviation of the per-day amplitude factor.
    pub daily_jitter: f64,
    /// Standard deviation of the persistent multiplicative noise.
    pub noise_sigma: f64,
    /// AR(1) persistence of the multiplicative noise in (0, 1).
    pub noise_persistence: f64,
    /// Expected number of promotion spikes per day.
    pub promos_per_day: f64,
    /// Day indices (0-based) that receive a Black-Friday style surge.
    pub black_friday_days: Vec<usize>,
    /// Peak multiplier of the Black-Friday surge.
    pub black_friday_boost: f64,
}

impl Default for B2wLoadModel {
    fn default() -> Self {
        B2wLoadModel {
            seed: 0xB2B2,
            trough: 2_500.0,
            peak: 25_000.0,
            weekly_amplitude: 0.08,
            daily_jitter: 0.09,
            noise_sigma: 0.07,
            noise_persistence: 0.985,
            promos_per_day: 0.3,
            black_friday_days: Vec::new(),
            black_friday_boost: 2.6,
        }
    }
}

impl B2wLoadModel {
    /// Generates `days` of per-minute load.
    pub fn generate(&self, days: usize) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = days * MINUTES_PER_DAY;

        // Per-day amplitude factors, interpolated at minute granularity so
        // midnight has no discontinuity.
        let day_factors: Vec<f64> = (0..=days)
            .map(|_| 1.0 + self.daily_jitter * randn(&mut rng))
            .collect();

        // Promotion bumps: Poisson-ish arrival per day during shopping hours.
        let mut promos: Vec<(usize, usize, f64)> = Vec::new(); // (start, dur, boost)
        for day in 0..days {
            if rng.random_range(0.0..1.0) < self.promos_per_day {
                let start = day * MINUTES_PER_DAY + rng.random_range(9 * 60..21 * 60);
                let dur = rng.random_range(30..180);
                let boost = rng.random_range(0.25..0.8);
                promos.push((start, dur, boost));
            }
        }

        let mut noise = 0.0f64;
        let rho = self.noise_persistence;
        let innov = self.noise_sigma * (1.0 - rho * rho).sqrt();

        let mut values = Vec::with_capacity(n);
        for t in 0..n {
            let day = t / MINUTES_PER_DAY;
            let minute = (t % MINUTES_PER_DAY) as f64;

            // Diurnal wave: trough near 04:00, peak near 16:00.
            let phase = 2.0 * PI * (minute - 4.0 * 60.0) / MINUTES_PER_DAY as f64;
            let s = (1.0 - phase.cos()) / 2.0; // 0 at 04:00, 1 at 16:00
            let mut load = self.trough + (self.peak - self.trough) * s.powf(1.15);

            // Weekly modulation (days 5, 6 of each week slightly lower).
            let dow = day % 7;
            let weekly = match dow {
                5 => 1.0 - self.weekly_amplitude,
                6 => 1.0 - 0.6 * self.weekly_amplitude,
                _ => 1.0 + 0.2 * self.weekly_amplitude,
            };
            load *= weekly;

            // Smoothly interpolated per-day amplitude drift.
            let frac = minute / MINUTES_PER_DAY as f64;
            let amp = day_factors[day] * (1.0 - frac) + day_factors[day + 1] * frac;
            load *= amp;

            // Persistent multiplicative noise.
            noise = rho * noise + innov * randn(&mut rng);
            load *= (1.0 + noise).max(0.05);

            // Promotion bumps (raised-cosine shape).
            for &(start, dur, boost) in &promos {
                if t >= start && t < start + dur {
                    let x = (t - start) as f64 / dur as f64;
                    load *= 1.0 + boost * (PI * x).sin();
                }
            }

            // Black Friday: sharp morning ramp, sustained surge all day.
            if self.black_friday_days.contains(&day) {
                let h = minute / 60.0;
                let surge = if h < 6.0 {
                    1.0 + 0.3 * (h / 6.0)
                } else {
                    // Ramp to the full boost by 10:00, hold through midnight.
                    let ramp = ((h - 6.0) / 4.0).min(1.0);
                    1.3 + (self.black_friday_boost - 1.3) * ramp
                };
                load *= surge;
            }

            values.push(load.max(0.0));
        }
        TimeSeries::new(Duration::from_secs(60), values)
    }

    /// Convenience: the paper's §8.3 window — 4.5 months with Black Friday
    /// near the end (day 115 of 135) and periodic promotions.
    pub fn four_and_a_half_months(seed: u64) -> (Self, usize) {
        let model = B2wLoadModel {
            seed,
            promos_per_day: 0.2,
            black_friday_days: vec![115],
            ..B2wLoadModel::default()
        };
        (model, 135)
    }
}

/// Which Wikipedia-like edition to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WikipediaEdition {
    /// English-like: high volume, strongly periodic.
    English,
    /// German-like: lower volume, less periodic (larger stochastic part).
    German,
}

/// Configuration for the synthetic hourly Wikipedia page-view load.
#[derive(Debug, Clone)]
pub struct WikipediaLoadModel {
    /// RNG seed.
    pub seed: u64,
    /// Which edition profile to use.
    pub edition: WikipediaEdition,
}

impl WikipediaLoadModel {
    /// Creates a model for the given edition.
    pub fn new(edition: WikipediaEdition, seed: u64) -> Self {
        WikipediaLoadModel { seed, edition }
    }

    /// Generates `days` of hourly page-view counts.
    pub fn generate(&self, days: usize) -> TimeSeries {
        let (base, diurnal_amp, weekly_amp, noise_sigma, rho, burst_rate): (
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
        ) = match self.edition {
            // Fig 6a: EN peaks near 9-10M req/hour; DE near 2-2.5M.
            WikipediaEdition::English => (7.0e6, 0.30, 0.05, 0.02, 0.9, 0.02),
            WikipediaEdition::German => (1.5e6, 0.40, 0.12, 0.07, 0.8, 0.08),
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = days * 24;
        let mut noise = 0.0f64;
        let innov = noise_sigma * (1.0 - rho * rho).sqrt();

        // Occasional news bursts (more common / larger for the German-like
        // series to lower its predictability).
        let mut bursts: Vec<(usize, usize, f64)> = Vec::new();
        for day in 0..days {
            if rng.random_range(0.0..1.0) < burst_rate * 24.0 {
                let start = day * 24 + rng.random_range(0..24);
                let dur = rng.random_range(2..8);
                let boost = rng.random_range(0.1..0.5);
                bursts.push((start, dur, boost));
            }
        }

        let mut values = Vec::with_capacity(n);
        for t in 0..n {
            let hour = (t % 24) as f64;
            let day = t / 24;
            // Peak evening readership ~20:00, trough ~05:00.
            let phase = 2.0 * PI * (hour - 5.0) / 24.0;
            let s = (1.0 - phase.cos()) / 2.0;
            let mut load = base * (1.0 + diurnal_amp * (2.0 * s - 1.0));

            let dow = day % 7;
            let weekly = if dow >= 5 {
                1.0 - weekly_amp
            } else {
                1.0 + 0.3 * weekly_amp
            };
            load *= weekly;

            noise = rho * noise + innov * randn(&mut rng);
            load *= (1.0 + noise).max(0.1);

            for &(start, dur, boost) in &bursts {
                if t >= start && t < start + dur {
                    let x = (t - start) as f64 / dur as f64;
                    load *= 1.0 + boost * (PI * x).sin();
                }
            }
            values.push(load.max(0.0));
        }
        TimeSeries::new(Duration::from_secs(3600), values)
    }
}

/// The idealised sinusoidal demand curve of Fig 2: per-minute load with the
/// given mean, relative amplitude and period in minutes.
pub fn sine_demand(minutes: usize, mean: f64, amplitude: f64, period_min: usize) -> TimeSeries {
    assert!(period_min > 0, "period must be positive");
    let values = (0..minutes)
        .map(|t| mean * (1.0 + amplitude * (2.0 * PI * t as f64 / period_min as f64).sin()))
        .collect();
    TimeSeries::new(Duration::from_secs(60), values)
}

/// A day of B2W-style load with a large *unexpected* spike, used by the
/// Fig 11 experiment (reaction to mispredicted flash crowds).
///
/// Returns the series; the spike starts at `spike_start_min` and ramps to
/// `spike_factor` times the baseline within `ramp_min` minutes, holding for
/// `hold_min` minutes before decaying.
pub fn day_with_unexpected_spike(
    seed: u64,
    spike_start_min: usize,
    ramp_min: usize,
    hold_min: usize,
    spike_factor: f64,
) -> TimeSeries {
    let base = B2wLoadModel {
        seed,
        ..B2wLoadModel::default()
    }
    .generate(1);
    let mut values = base.values().to_vec();
    let n = values.len();
    for (t, v) in values.iter_mut().enumerate() {
        if t < spike_start_min {
            continue;
        }
        let dt = t - spike_start_min;
        let mult = if dt < ramp_min {
            1.0 + (spike_factor - 1.0) * dt as f64 / ramp_min as f64
        } else if dt < ramp_min + hold_min {
            spike_factor
        } else {
            let decay = (dt - ramp_min - hold_min) as f64 / ramp_min.max(1) as f64;
            1.0 + (spike_factor - 1.0) * (-decay).exp()
        };
        *v *= mult;
        let _ = n;
    }
    TimeSeries::new(Duration::from_secs(60), values)
}

/// A repeating flash-sale load: a low base with one sharp daily surge —
/// the load shape whose rise is much faster than any migration, used by
/// the effective-capacity ablation and stress tests.
///
/// Per day: `base` txn/s except a surge of `peak` txn/s starting at
/// `surge_start_min`, ramping over `ramp_min` minutes and holding for
/// `hold_min`.
pub fn flash_sale_load(
    days: usize,
    base: f64,
    peak: f64,
    surge_start_min: usize,
    ramp_min: usize,
    hold_min: usize,
) -> TimeSeries {
    assert!(peak >= base, "peak must be at least base");
    assert!(
        surge_start_min + ramp_min + hold_min <= MINUTES_PER_DAY,
        "surge must fit in a day"
    );
    let values = (0..days * MINUTES_PER_DAY)
        .map(|m| {
            let of_day = m % MINUTES_PER_DAY;
            if of_day >= surge_start_min && of_day < surge_start_min + ramp_min {
                let f = (of_day - surge_start_min) as f64 / ramp_min.max(1) as f64;
                base + (peak - base) * f
            } else if of_day >= surge_start_min + ramp_min
                && of_day < surge_start_min + ramp_min + hold_min
            {
                peak
            } else {
                base
            }
        })
        .collect();
    TimeSeries::new(Duration::from_secs(60), values)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;
    use crate::metrics::mre;
    use crate::model::LoadPredictor;
    use crate::spar::{SparConfig, SparModel};

    #[test]
    fn b2w_load_has_ten_x_peak_to_trough() {
        // Fig 1 shows each day peaking at roughly 10x its own trough.
        // Measure the same-day ratio on a smoothed curve (noise damped)
        // and check the median day sits in the ~10x band.
        let s = B2wLoadModel::default().generate(7);
        let sm = s.smoothed(61);
        let mut ratios: Vec<f64> = (0..7)
            .map(|d| {
                let day = sm.slice(d * MINUTES_PER_DAY, (d + 1) * MINUTES_PER_DAY);
                day.max() / day.min().max(1.0)
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let median = ratios[3];
        assert!(
            (6.0..18.0).contains(&median),
            "median same-day peak/trough ratio {median} outside the ~10x band ({ratios:?})"
        );
    }

    #[test]
    fn b2w_load_is_deterministic_per_seed() {
        let a = B2wLoadModel::default().generate(2);
        let b = B2wLoadModel::default().generate(2);
        assert_eq!(a, b);
        let c = B2wLoadModel {
            seed: 99,
            ..B2wLoadModel::default()
        }
        .generate(2);
        assert_ne!(a, c);
    }

    #[test]
    fn b2w_load_peaks_in_the_afternoon() {
        let s = B2wLoadModel::default().generate(3);
        let day = &s.values()[MINUTES_PER_DAY..2 * MINUTES_PER_DAY];
        let peak_minute = day
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let hour = peak_minute / 60;
        assert!(
            (11..22).contains(&hour),
            "peak at hour {hour}, expected daytime"
        );
        let trough_minute = day
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let trough_hour = trough_minute / 60;
        assert!(
            trough_hour <= 8 || trough_hour >= 23,
            "trough at hour {trough_hour}, expected night"
        );
    }

    #[test]
    fn black_friday_day_dwarfs_regular_days() {
        let model = B2wLoadModel {
            black_friday_days: vec![2],
            ..B2wLoadModel::default()
        };
        let s = model.generate(4);
        let day_max = |d: usize| {
            s.values()[d * MINUTES_PER_DAY..(d + 1) * MINUTES_PER_DAY]
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        assert!(day_max(2) > 1.8 * day_max(1));
        assert!(day_max(2) > 1.8 * day_max(3));
    }

    #[test]
    fn b2w_load_is_spar_predictable() {
        // The headline requirement: SPAR achieves low double-digit MRE at
        // tau = 60 on this load, as in Fig 5 (10.4%).
        let s = B2wLoadModel::default().generate(35);
        let cfg = SparConfig::b2w_default();
        let train_len = 28 * MINUTES_PER_DAY;
        let model = SparModel::fit(&s.values()[..train_len], &cfg).unwrap();
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        let mut t = train_len;
        while t + 60 < s.len() {
            preds.push(model.predict(&s.values()[..t], 60));
            actuals.push(s.values()[t - 1 + 60]);
            t += 37; // subsample origins for test speed
        }
        let err = mre(&preds, &actuals).unwrap();
        assert!(err < 0.15, "SPAR tau=60 MRE on synthetic B2W: {err}");
    }

    #[test]
    fn wikipedia_english_more_predictable_than_german() {
        let days = 42;
        let train_days = 28;
        let mut errs = Vec::new();
        for edition in [WikipediaEdition::English, WikipediaEdition::German] {
            let s = WikipediaLoadModel::new(edition, 7).generate(days);
            let cfg = SparConfig {
                period: 24,
                n_periods: 7,
                m_recent: 12,
                taus: vec![1, 2, 3],
                ridge_lambda: 1e-4,
                max_rows: 10_000,
            };
            let train_len = train_days * 24;
            let model = SparModel::fit(&s.values()[..train_len], &cfg).unwrap();
            let mut preds = Vec::new();
            let mut actuals = Vec::new();
            for t in train_len..s.len() - 2 {
                preds.push(model.predict(&s.values()[..t], 2));
                actuals.push(s.values()[t + 1]);
            }
            errs.push(mre(&preds, &actuals).unwrap());
        }
        assert!(errs[0] < errs[1], "EN should be more predictable: {errs:?}");
        assert!(
            errs[1] < 0.15,
            "DE error should stay under ~13-15%: {errs:?}"
        );
    }

    #[test]
    fn wikipedia_volumes_match_paper_scale() {
        let en = WikipediaLoadModel::new(WikipediaEdition::English, 1).generate(7);
        let de = WikipediaLoadModel::new(WikipediaEdition::German, 1).generate(7);
        assert!(en.max() > 8.0e6 && en.max() < 1.3e7, "EN max {}", en.max());
        assert!(de.max() > 1.5e6 && de.max() < 3.5e6, "DE max {}", de.max());
    }

    #[test]
    fn sine_demand_shape() {
        let s = sine_demand(100, 10.0, 0.5, 100);
        assert!((s.values()[0] - 10.0).abs() < 1e-9);
        assert!((s.max() - 15.0).abs() < 0.1);
        assert!((s.min() - 5.0).abs() < 0.1);
    }

    #[test]
    fn flash_sale_shape() {
        let s = flash_sale_load(2, 800.0, 2_800.0, 600, 10, 180);
        assert_eq!(s.len(), 2 * 1440);
        assert_eq!(s.values()[0], 800.0);
        assert_eq!(s.values()[599], 800.0);
        assert_eq!(s.values()[605], 800.0 + 2_000.0 * 0.5);
        assert_eq!(s.values()[700], 2_800.0);
        assert_eq!(s.values()[800], 800.0);
        // Second day repeats.
        assert_eq!(s.values()[1440 + 700], 2_800.0);
    }

    #[test]
    fn unexpected_spike_reaches_factor() {
        let plain = B2wLoadModel {
            seed: 5,
            ..B2wLoadModel::default()
        }
        .generate(1);
        let spiked = day_with_unexpected_spike(5, 600, 30, 120, 2.5);
        // During the hold window the spiked series is ~2.5x the plain one.
        let t = 700;
        let ratio = spiked.values()[t] / plain.values()[t];
        assert!((ratio - 2.5).abs() < 1e-6, "ratio {ratio}");
        // Before the spike the two series agree.
        assert_eq!(spiked.values()[100], plain.values()[100]);
    }
}
