//! Auto-regressive AR(p) model, fit by least squares.
//!
//! `y(t) = c + phi_1 y(t-1) + ... + phi_p y(t-p)`
//!
//! Multi-step forecasts are produced recursively by feeding predictions back
//! as inputs, which is why plain AR degrades quickly on long horizons of
//! strongly diurnal load (§5 of the paper reports 12.5% MRE at tau = 60 min
//! versus SPAR's 10.4%).

use crate::linalg::{ridge, Matrix};
use crate::model::{FitError, LoadPredictor};

/// Configuration for an AR(p) fit.
#[derive(Debug, Clone)]
pub struct ArConfig {
    /// Model order (number of lags).
    pub order: usize,
    /// Ridge regularisation strength; small positive values keep the fit
    /// well-posed when lag columns are nearly collinear.
    pub ridge_lambda: f64,
    /// Row-subsampling stride over the training set (1 = use every row).
    pub stride: usize,
}

impl Default for ArConfig {
    fn default() -> Self {
        ArConfig {
            order: 30,
            ridge_lambda: 1e-6,
            stride: 1,
        }
    }
}

/// A fitted AR(p) model.
#[derive(Debug, Clone)]
pub struct ArModel {
    intercept: f64,
    coef: Vec<f64>, // coef[i] multiplies y(t - 1 - i)
}

impl ArModel {
    /// Fits an AR model to `train` with the given configuration.
    ///
    /// # Errors
    /// Returns [`FitError::NotEnoughData`] when the training series cannot
    /// supply at least `2 * order` regression rows, and
    /// [`FitError::Numerical`] when the least-squares solve fails.
    pub fn fit(train: &[f64], config: &ArConfig) -> Result<Self, FitError> {
        assert!(config.order > 0, "AR order must be positive");
        assert!(config.stride > 0, "stride must be positive");
        let p = config.order;
        let required = p + 2 * p; // lags + a healthy number of rows
        if train.len() < required {
            return Err(FitError::NotEnoughData {
                required,
                available: train.len(),
            });
        }

        let targets: Vec<usize> = (p..train.len()).step_by(config.stride).collect();
        let rows = targets.len();
        let mut a = Matrix::zeros(rows, p + 1);
        let mut b = Vec::with_capacity(rows);
        for (r, &t) in targets.iter().enumerate() {
            a[(r, 0)] = 1.0;
            for i in 0..p {
                a[(r, i + 1)] = train[t - 1 - i];
            }
            b.push(train[t]);
        }
        let x =
            ridge(&a, &b, config.ridge_lambda).map_err(|e| FitError::Numerical(e.to_string()))?;
        Ok(ArModel {
            intercept: x[0],
            coef: x[1..].to_vec(),
        })
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.coef.len()
    }

    /// One-step prediction given the trailing lags
    /// (`lags[0]` is the most recent observation).
    fn step(&self, lags: &[f64]) -> f64 {
        let mut y = self.intercept;
        for (c, l) in self.coef.iter().zip(lags) {
            y += c * l;
        }
        y
    }
}

impl LoadPredictor for ArModel {
    fn min_history(&self) -> usize {
        self.coef.len()
    }

    fn predict(&self, history: &[f64], tau: usize) -> f64 {
        assert!(tau >= 1, "tau must be at least 1");
        self.predict_horizon(history, tau)[tau - 1]
    }

    fn predict_horizon(&self, history: &[f64], h: usize) -> Vec<f64> {
        let p = self.coef.len();
        assert!(
            history.len() >= p,
            "history ({}) shorter than AR order ({p})",
            history.len()
        );
        // lags[0] = most recent value; predictions are fed back in.
        let mut lags: Vec<f64> = history.iter().rev().take(p).copied().collect();
        let mut out = Vec::with_capacity(h);
        for _ in 0..h {
            let y = self.step(&lags);
            out.push(y);
            lags.rotate_right(1);
            lags[0] = y;
        }
        out
    }

    fn name(&self) -> &str {
        "AR"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;

    #[test]
    fn recovers_ar1_process_coefficient() {
        // y(t) = 0.8 y(t-1) + 5, deterministic.
        let mut y = vec![10.0];
        for _ in 0..200 {
            let last = *y.last().unwrap();
            y.push(0.8 * last + 5.0);
        }
        let model = ArModel::fit(
            &y,
            &ArConfig {
                order: 1,
                ridge_lambda: 0.0,
                stride: 1,
            },
        )
        .unwrap();
        // The series converges to 25, making the regressors nearly constant;
        // coefficient + intercept must still reproduce the fixed point.
        let pred = model.predict(&y, 1);
        let expect = 0.8 * y.last().unwrap() + 5.0;
        assert!((pred - expect).abs() < 1e-6, "pred={pred}, expect={expect}");
    }

    #[test]
    fn exact_on_linear_recurrence() {
        // Fibonacci-like: y(t) = y(t-1) + y(t-2), exactly AR(2).
        let mut y = vec![1.0, 1.0];
        for t in 2..40 {
            let v: f64 = y[t - 1] + y[t - 2];
            y.push(v / 1.5); // damp to avoid overflow and collinearity
        }
        let model = ArModel::fit(
            &y,
            &ArConfig {
                order: 2,
                ridge_lambda: 1e-9,
                stride: 1,
            },
        )
        .unwrap();
        let pred = model.predict(&y, 1);
        let expect = (y[y.len() - 1] + y[y.len() - 2]) / 1.5;
        assert!((pred - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn horizon_is_recursive_and_consistent() {
        let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let model = ArModel::fit(&y, &ArConfig::default()).unwrap();
        let horizon = model.predict_horizon(&y, 5);
        assert_eq!(horizon.len(), 5);
        for (tau, expected) in horizon.iter().enumerate() {
            assert_eq!(model.predict(&y, tau + 1), *expected);
        }
    }

    #[test]
    fn rejects_short_training_series() {
        let y = vec![1.0; 10];
        let err = ArModel::fit(
            &y,
            &ArConfig {
                order: 8,
                ..ArConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FitError::NotEnoughData { .. }));
    }

    #[test]
    fn stride_subsampling_still_fits() {
        let y: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin() + 5.0).collect();
        let model = ArModel::fit(
            &y,
            &ArConfig {
                order: 10,
                ridge_lambda: 1e-6,
                stride: 3,
            },
        )
        .unwrap();
        let pred = model.predict(&y, 1);
        assert!(pred.is_finite());
        assert!((pred - 5.0).abs() < 2.0);
    }
}
