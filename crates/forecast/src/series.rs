//! Regularly sampled time series of load measurements.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A regularly sampled, contiguous time series.
///
/// Values are load measurements (e.g. requests per minute) taken at a fixed
/// interval. Index `0` corresponds to `start_slot` ticks of `interval` since
/// an arbitrary epoch, so two series produced by the same generator can be
/// aligned.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    interval: Duration,
    start_slot: u64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series starting at slot 0.
    pub fn new(interval: Duration, values: Vec<f64>) -> Self {
        Self::with_start(interval, 0, values)
    }

    /// Creates a series starting at the given slot offset.
    pub fn with_start(interval: Duration, start_slot: u64, values: Vec<f64>) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        TimeSeries {
            interval,
            start_slot,
            values,
        }
    }

    /// Sampling interval between consecutive values.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Slot index (in units of `interval`) of the first value.
    pub fn start_slot(&self) -> u64 {
        self.start_slot
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Appends a new observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The last observation, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Maximum value, or 0 for the empty series.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum value, or 0 for the empty series.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Arithmetic mean, or 0 for the empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Returns the contiguous sub-series `[from, to)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, from: usize, to: usize) -> TimeSeries {
        assert!(from <= to && to <= self.values.len(), "invalid slice range");
        TimeSeries {
            interval: self.interval,
            start_slot: self.start_slot + from as u64,
            values: self.values[from..to].to_vec(),
        }
    }

    /// Splits into `(train, test)` at `at` (train gets `[0, at)`).
    pub fn split(&self, at: usize) -> (TimeSeries, TimeSeries) {
        (self.slice(0, at), self.slice(at, self.len()))
    }

    /// Downsamples by summing non-overlapping windows of `factor` samples.
    ///
    /// Converts e.g. per-minute request counts into per-hour request counts.
    /// A trailing partial window is dropped.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    #[allow(clippy::cast_possible_truncation)] // factors are tiny (e.g. 60)
    pub fn downsample_sum(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "factor must be positive");
        let values: Vec<f64> = self
            .values
            .chunks_exact(factor)
            .map(|w| w.iter().sum())
            .collect();
        TimeSeries {
            interval: self.interval * factor as u32,
            start_slot: self.start_slot / factor as u64,
            values,
        }
    }

    /// Downsamples by averaging non-overlapping windows of `factor` samples.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn downsample_mean(&self, factor: usize) -> TimeSeries {
        let mut s = self.downsample_sum(factor);
        for v in &mut s.values {
            *v /= factor as f64;
        }
        s
    }

    /// Multiplies every value by `scale` (used e.g. for the paper's 15%
    /// prediction inflation and the 10x trace speed-up).
    pub fn scaled(&self, scale: f64) -> TimeSeries {
        TimeSeries {
            interval: self.interval,
            start_slot: self.start_slot,
            values: self.values.iter().map(|v| v * scale).collect(),
        }
    }

    /// Centred moving average with the given (odd) window; edges use the
    /// available samples only.
    pub fn smoothed(&self, window: usize) -> TimeSeries {
        assert!(window % 2 == 1, "window must be odd");
        let half = window / 2;
        let n = self.values.len();
        let values = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                self.values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect();
        TimeSeries {
            interval: self.interval,
            start_slot: self.start_slot,
            values,
        }
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeSeries({} samples @ {:?}, start slot {})",
            self.values.len(),
            self.interval,
            self.start_slot
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;

    fn minutes(n: u64) -> Duration {
        Duration::from_secs(60 * n)
    }

    #[test]
    fn basic_stats() {
        let s = TimeSeries::new(minutes(1), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.last(), Some(4.0));
    }

    #[test]
    fn empty_series_stats_are_zero() {
        let s = TimeSeries::new(minutes(1), vec![]);
        assert!(s.is_empty());
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn slice_preserves_alignment() {
        let s = TimeSeries::new(minutes(1), (0..10).map(|i| i as f64).collect());
        let sub = s.slice(3, 7);
        assert_eq!(sub.start_slot(), 3);
        assert_eq!(sub.values(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn split_partitions_series() {
        let s = TimeSeries::new(minutes(1), (0..10).map(|i| i as f64).collect());
        let (train, test) = s.split(6);
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 4);
        assert_eq!(test.start_slot(), 6);
        assert_eq!(test.values()[0], 6.0);
    }

    #[test]
    fn downsample_sum_aggregates_windows() {
        let s = TimeSeries::new(minutes(1), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let d = s.downsample_sum(3);
        assert_eq!(d.values(), &[6.0, 15.0]); // trailing partial window dropped
        assert_eq!(d.interval(), minutes(3));
    }

    #[test]
    fn downsample_mean_averages_windows() {
        let s = TimeSeries::new(minutes(1), vec![2.0, 4.0, 6.0, 8.0]);
        let d = s.downsample_mean(2);
        assert_eq!(d.values(), &[3.0, 7.0]);
    }

    #[test]
    fn scaled_multiplies_values() {
        let s = TimeSeries::new(minutes(1), vec![1.0, 2.0]);
        assert_eq!(s.scaled(1.15).values(), &[1.15, 2.3]);
    }

    #[test]
    fn smoothing_reduces_variance_of_noise() {
        let vals: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        let s = TimeSeries::new(minutes(1), vals);
        let sm = s.smoothed(5);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(sm.values()) < var(s.values()));
        assert_eq!(sm.len(), s.len());
    }

    #[test]
    #[should_panic(expected = "invalid slice range")]
    fn slice_panics_out_of_range() {
        let s = TimeSeries::new(minutes(1), vec![1.0]);
        let _ = s.slice(0, 2);
    }
}
