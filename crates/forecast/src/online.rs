//! Online prediction with periodic refitting ("active learning", §6).
//!
//! The paper's Predictor component learns SPAR coefficients offline when
//! training data exists, otherwise it monitors the live system and fits once
//! enough measurements accumulate; coefficients are refreshed periodically
//! (weekly in the paper's deployment). [`OnlinePredictor`] implements that
//! life-cycle around any [`LoadPredictor`] fit function.

use crate::model::{FitError, LoadPredictor};

/// Function that fits a predictor to a training window.
pub type FitFn = Box<dyn Fn(&[f64]) -> Result<Box<dyn LoadPredictor>, FitError> + Send + Sync>;

/// A self-(re)fitting predictor fed by a stream of load measurements.
pub struct OnlinePredictor {
    fit: FitFn,
    history: Vec<f64>,
    model: Option<Box<dyn LoadPredictor>>,
    min_train: usize,
    refit_every: usize,
    observations_since_fit: usize,
    max_history: usize,
    fit_failures: u64,
}

impl OnlinePredictor {
    /// Creates an online predictor.
    ///
    /// * `fit` — fitting function invoked on the accumulated history.
    /// * `min_train` — observations required before the first fit.
    /// * `refit_every` — observations between refits (the paper refreshes
    ///   weekly; per-minute slots make that 10 080).
    /// * `max_history` — cap on retained history (oldest samples dropped).
    pub fn new(fit: FitFn, min_train: usize, refit_every: usize, max_history: usize) -> Self {
        assert!(refit_every > 0, "refit_every must be positive");
        assert!(
            max_history >= min_train,
            "max_history must cover the training window"
        );
        OnlinePredictor {
            fit,
            history: Vec::new(),
            model: None,
            min_train,
            refit_every,
            observations_since_fit: 0,
            max_history,
            fit_failures: 0,
        }
    }

    /// Seeds the predictor with offline training data (fits immediately if
    /// long enough).
    pub fn seed(&mut self, data: &[f64]) {
        self.history.extend_from_slice(data);
        self.trim();
        self.try_fit();
    }

    /// Records a new load measurement and refits on schedule.
    pub fn observe(&mut self, value: f64) {
        self.history.push(value);
        self.trim();
        self.observations_since_fit += 1;
        let due = self.model.is_none() || self.observations_since_fit >= self.refit_every;
        if due && self.history.len() >= self.min_train {
            self.try_fit();
        }
    }

    fn trim(&mut self) {
        if self.history.len() > self.max_history {
            let excess = self.history.len() - self.max_history;
            self.history.drain(..excess);
        }
    }

    fn try_fit(&mut self) {
        if self.history.len() < self.min_train {
            return;
        }
        match (self.fit)(&self.history) {
            Ok(m) => {
                self.model = Some(m);
                self.observations_since_fit = 0;
                pstore_telemetry::tel_event!(
                    pstore_telemetry::kinds::FORECAST_RETRAIN,
                    "history" => self.history.len(),
                    "ok" => true,
                );
            }
            Err(_) => {
                self.fit_failures += 1;
                pstore_telemetry::tel_event!(
                    pstore_telemetry::kinds::FORECAST_RETRAIN,
                    "history" => self.history.len(),
                    "ok" => false,
                );
            }
        }
    }

    /// Whether a model has been fitted and can forecast.
    pub fn is_ready(&self) -> bool {
        self.model
            .as_ref()
            .is_some_and(|m| self.history.len() >= m.min_history())
    }

    /// Forecasts the next `h` slots, or `None` until enough data has been
    /// observed.
    ///
    /// Load is a non-negative rate, but the linear models can dip below
    /// zero near troughs; negative predictions are clamped to zero here so
    /// every forecast the Predictor hands downstream satisfies invariant
    /// `FOR-01`. Non-finite values are passed through unmasked (they would
    /// indicate a broken fit and must stay visible to the checkers).
    pub fn forecast(&self, h: usize) -> Option<Vec<f64>> {
        let model = self.model.as_ref()?;
        if self.history.len() < model.min_history() {
            return None;
        }
        let raw = model.predict_horizon(&self.history, h);
        let curve: Vec<f64> = raw
            .into_iter()
            .map(|v| if v < 0.0 { 0.0 } else { v })
            .collect();
        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::FORECAST_PREDICT,
            "horizon" => h,
            "peak" => curve.iter().copied().fold(0.0, f64::max),
        );
        Some(curve)
    }

    /// Number of retained measurements.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Number of failed fit attempts (diagnostic).
    pub fn fit_failures(&self) -> u64 {
        self.fit_failures
    }

    /// The most recent observation.
    pub fn last_observation(&self) -> Option<f64> {
        self.history.last().copied()
    }
}

impl std::fmt::Debug for OnlinePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlinePredictor")
            .field("history_len", &self.history.len())
            .field("ready", &self.is_ready())
            .field("fit_failures", &self.fit_failures)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spar::{SparConfig, SparModel};

    fn spar_fit(cfg: SparConfig) -> FitFn {
        Box::new(move |data: &[f64]| {
            SparModel::fit(data, &cfg).map(|m| Box::new(m) as Box<dyn LoadPredictor>)
        })
    }

    fn cfg() -> SparConfig {
        SparConfig {
            period: 24,
            n_periods: 2,
            m_recent: 4,
            taus: vec![1, 2],
            ridge_lambda: 1e-6,
            max_rows: 2_000,
        }
    }

    fn signal(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| 50.0 + 20.0 * (2.0 * std::f64::consts::PI * (i % 24) as f64 / 24.0).sin())
            .collect()
    }

    #[test]
    fn not_ready_until_min_train() {
        let c = cfg();
        let mut p = OnlinePredictor::new(spar_fit(c.clone()), c.min_history() + 48, 24, 10_000);
        for v in signal(10) {
            p.observe(v);
        }
        assert!(!p.is_ready());
        assert_eq!(p.forecast(4), None);
    }

    #[test]
    fn becomes_ready_and_forecasts_after_seeding() {
        let c = cfg();
        let mut p = OnlinePredictor::new(spar_fit(c.clone()), c.min_history() + 48, 24, 10_000);
        p.seed(&signal(24 * 10));
        assert!(p.is_ready());
        let f = p.forecast(6).unwrap();
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn refits_on_schedule() {
        let c = cfg();
        let mut p = OnlinePredictor::new(spar_fit(c.clone()), c.min_history() + 24, 24, 10_000);
        let data = signal(24 * 12);
        p.seed(&data[..24 * 9]);
        assert!(p.is_ready());
        // Keep observing; refits should not fail and stay ready.
        for &v in &data[24 * 9..] {
            p.observe(v);
        }
        assert!(p.is_ready());
        assert_eq!(p.fit_failures(), 0);
    }

    #[test]
    fn history_is_capped() {
        let c = cfg();
        let cap = c.min_history() + 100;
        let mut p = OnlinePredictor::new(spar_fit(c.clone()), c.min_history() + 10, 24, cap);
        p.seed(&signal(cap + 500));
        assert_eq!(p.history_len(), cap);
        assert!(p.is_ready());
    }

    #[test]
    fn online_forecast_tracks_periodic_signal() {
        let c = cfg();
        let data = signal(24 * 12);
        let mut p = OnlinePredictor::new(spar_fit(c.clone()), c.min_history() + 24, 9999, 10_000);
        p.seed(&data[..24 * 10]);
        let mut errs = Vec::new();
        for (i, &v) in data[24 * 10..24 * 12 - 1].iter().enumerate() {
            p.observe(v);
            if let Some(f) = p.forecast(1) {
                let actual = data[24 * 10 + i + 1];
                errs.push((f[0] - actual).abs() / actual);
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.01, "online MRE too high: {mean_err}");
    }
}
