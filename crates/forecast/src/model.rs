//! Common interface for load-prediction models.

use crate::series::TimeSeries;
use std::fmt;

/// Error produced when fitting a forecasting model.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The training series is shorter than the model's minimum history.
    NotEnoughData {
        /// Observations required.
        required: usize,
        /// Observations available.
        available: usize,
    },
    /// The underlying least-squares fit failed (e.g. degenerate regressors).
    Numerical(String),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughData {
                required,
                available,
            } => write!(
                f,
                "not enough training data: need {required} observations, have {available}"
            ),
            FitError::Numerical(msg) => write!(f, "numerical failure during fit: {msg}"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted load predictor.
///
/// Implementations forecast future load from a window of past observations.
/// All horizons are expressed in slots of the sampling interval the model
/// was fitted at.
pub trait LoadPredictor: Send + Sync {
    /// Minimum number of trailing history observations `predict` requires.
    fn min_history(&self) -> usize;

    /// Predicts the load `tau` slots after the last observation in
    /// `history` (`tau >= 1`).
    ///
    /// `history` must contain at least [`min_history`](Self::min_history)
    /// observations; only the trailing window is used.
    fn predict(&self, history: &[f64], tau: usize) -> f64;

    /// Predicts the whole horizon `1..=h` after the last observation.
    ///
    /// The default implementation calls [`predict`](Self::predict) per slot;
    /// recursive models override it to share state across the horizon.
    fn predict_horizon(&self, history: &[f64], h: usize) -> Vec<f64> {
        (1..=h).map(|tau| self.predict(history, tau)).collect()
    }

    /// Human-readable model name (used in experiment output).
    fn name(&self) -> &str;
}

/// Rolling-origin (walk-forward) evaluation of a predictor.
///
/// For every origin `t` in `test` with enough preceding history, predicts
/// `tau` slots ahead and pairs the prediction with the realised value.
/// `full` must contain the training prefix followed by the test region;
/// `test_start` is the index in `full` where evaluation begins.
///
/// Returns `(predictions, actuals)` aligned pairs.
pub fn rolling_forecast(
    model: &dyn LoadPredictor,
    full: &TimeSeries,
    test_start: usize,
    tau: usize,
) -> (Vec<f64>, Vec<f64>) {
    let vals = full.values();
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    let min_hist = model.min_history();
    // With history `vals[..t]` the last observation is index t - 1, so a
    // tau-slot-ahead forecast targets index t - 1 + tau.
    let first_origin = (test_start + 1).saturating_sub(tau).max(min_hist);
    for t in first_origin.. {
        let target = t - 1 + tau;
        if target >= vals.len() {
            break;
        }
        if target < test_start {
            continue;
        }
        preds.push(model.predict(&vals[..t], tau));
        actuals.push(vals[target]);
    }
    (preds, actuals)
}

/// A trivial seasonal-naive predictor: forecast the value one period ago.
///
/// Used as a sanity baseline in tests and experiments.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive model with the given period (in slots).
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaive { period }
    }
}

impl LoadPredictor for SeasonalNaive {
    fn min_history(&self) -> usize {
        self.period
    }

    fn predict(&self, history: &[f64], tau: usize) -> f64 {
        assert!(tau >= 1, "tau must be at least 1");
        assert!(
            history.len() >= self.min_history(),
            "history shorter than one period"
        );
        // Value at the same phase one (or more) periods ago.
        let mut idx = history.len() + tau;
        while idx > history.len() {
            idx -= self.period;
        }
        history[idx - 1]
    }

    fn name(&self) -> &str {
        "seasonal-naive"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;
    use std::time::Duration;

    fn periodic_series(period: usize, reps: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..period * reps)
            .map(|i| (i % period) as f64 + 1.0)
            .collect();
        TimeSeries::new(Duration::from_secs(60), vals)
    }

    #[test]
    fn seasonal_naive_is_exact_on_periodic_signal() {
        let s = periodic_series(24, 4);
        let model = SeasonalNaive::new(24);
        let vals = s.values();
        for tau in 1..=24 {
            let pred = model.predict(&vals[..48], tau);
            assert_eq!(pred, vals[48 + tau - 1]);
        }
    }

    #[test]
    fn seasonal_naive_handles_tau_beyond_one_period() {
        let s = periodic_series(10, 5);
        let model = SeasonalNaive::new(10);
        let pred = model.predict(&s.values()[..30], 15);
        assert_eq!(pred, s.values()[30 + 14]);
    }

    #[test]
    fn rolling_forecast_aligns_predictions_and_actuals() {
        let s = periodic_series(8, 6);
        let model = SeasonalNaive::new(8);
        let (preds, actuals) = rolling_forecast(&model, &s, 32, 4);
        assert_eq!(preds.len(), actuals.len());
        assert!(!preds.is_empty());
        // Exact periodicity: predictions must match actuals exactly.
        for (p, a) in preds.iter().zip(&actuals) {
            assert_eq!(p, a);
        }
    }

    #[test]
    fn fit_error_display() {
        let e = FitError::NotEnoughData {
            required: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(FitError::Numerical("x".into()).to_string().contains('x'));
    }
}
