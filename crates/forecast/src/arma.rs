//! ARMA(p, q) model fit with the two-stage Hannan–Rissanen procedure.
//!
//! Stage 1 fits a long auto-regression to estimate the innovation sequence;
//! stage 2 regresses the series on its own lags *and* the estimated
//! innovation lags. Forecasts beyond the first step set future innovations
//! to their mean (zero), so the MA terms only sharpen short-horizon
//! predictions — matching the paper's observation that ARMA sits between
//! plain AR and SPAR in accuracy on the B2W load (§5).

use crate::ar::{ArConfig, ArModel};
use crate::linalg::{ridge, Matrix};
use crate::model::{FitError, LoadPredictor};

/// Configuration for an ARMA(p, q) fit.
#[derive(Debug, Clone)]
pub struct ArmaConfig {
    /// AR order p.
    pub p: usize,
    /// MA order q.
    pub q: usize,
    /// Order of the stage-1 long auto-regression (defaults to
    /// `max(20, 2 * (p + q))` when `None`).
    pub long_ar_order: Option<usize>,
    /// Ridge regularisation for both stages.
    pub ridge_lambda: f64,
    /// Row-subsampling stride for stage 2.
    pub stride: usize,
}

impl Default for ArmaConfig {
    fn default() -> Self {
        ArmaConfig {
            p: 30,
            q: 10,
            long_ar_order: None,
            ridge_lambda: 1e-6,
            stride: 1,
        }
    }
}

/// A fitted ARMA(p, q) model.
#[derive(Debug, Clone)]
pub struct ArmaModel {
    intercept: f64,
    ar_coef: Vec<f64>, // ar_coef[i] multiplies y(t - 1 - i)
    ma_coef: Vec<f64>, // ma_coef[j] multiplies e(t - 1 - j)
    long_ar: ArModel,  // kept to rebuild innovations at prediction time
}

impl ArmaModel {
    /// Fits an ARMA model to `train`.
    ///
    /// # Errors
    /// Returns [`FitError::NotEnoughData`] when the series cannot support
    /// both stages, and [`FitError::Numerical`] on solver failure.
    pub fn fit(train: &[f64], config: &ArmaConfig) -> Result<Self, FitError> {
        assert!(config.p > 0, "ARMA requires p >= 1");
        let long_order = config
            .long_ar_order
            .unwrap_or_else(|| (2 * (config.p + config.q)).max(20));
        let required = long_order + config.p.max(config.q) + 4 * (config.p + config.q + 1);
        if train.len() < required {
            return Err(FitError::NotEnoughData {
                required,
                available: train.len(),
            });
        }

        // Stage 1: long AR to estimate innovations e(t) = y(t) - yhat(t).
        let long_ar = ArModel::fit(
            train,
            &ArConfig {
                order: long_order,
                ridge_lambda: config.ridge_lambda,
                stride: 1,
            },
        )?;
        let innov = innovations(&long_ar, train);

        // Stage 2: regress y(t) on [1, y lags, e lags]. Row t is valid when
        // both y lags and innovation lags exist.
        let first = long_order + config.q.max(config.p);
        let targets: Vec<usize> = (first..train.len()).step_by(config.stride).collect();
        if targets.len() < config.p + config.q + 1 {
            return Err(FitError::NotEnoughData {
                required,
                available: train.len(),
            });
        }
        let cols = 1 + config.p + config.q;
        let mut a = Matrix::zeros(targets.len(), cols);
        let mut b = Vec::with_capacity(targets.len());
        for (r, &t) in targets.iter().enumerate() {
            a[(r, 0)] = 1.0;
            for i in 0..config.p {
                a[(r, 1 + i)] = train[t - 1 - i];
            }
            for j in 0..config.q {
                a[(r, 1 + config.p + j)] = innov[t - 1 - j];
            }
            b.push(train[t]);
        }
        let x =
            ridge(&a, &b, config.ridge_lambda).map_err(|e| FitError::Numerical(e.to_string()))?;
        Ok(ArmaModel {
            intercept: x[0],
            ar_coef: x[1..1 + config.p].to_vec(),
            ma_coef: x[1 + config.p..].to_vec(),
            long_ar,
        })
    }

    /// AR order p.
    pub fn p(&self) -> usize {
        self.ar_coef.len()
    }

    /// MA order q.
    pub fn q(&self) -> usize {
        self.ma_coef.len()
    }
}

/// Innovation estimates from a fitted long AR: zero over the warm-up prefix,
/// one-step-ahead residuals afterwards.
fn innovations(long_ar: &ArModel, data: &[f64]) -> Vec<f64> {
    let order = long_ar.min_history();
    let mut innov = vec![0.0; data.len()];
    for t in order..data.len() {
        let pred = long_ar.predict(&data[..t], 1);
        innov[t] = data[t] - pred;
    }
    innov
}

impl LoadPredictor for ArmaModel {
    fn min_history(&self) -> usize {
        self.long_ar
            .min_history()
            .max(self.ar_coef.len())
            .max(self.ma_coef.len())
            + self.ma_coef.len()
    }

    fn predict(&self, history: &[f64], tau: usize) -> f64 {
        assert!(tau >= 1, "tau must be at least 1");
        self.predict_horizon(history, tau)[tau - 1]
    }

    fn predict_horizon(&self, history: &[f64], h: usize) -> Vec<f64> {
        assert!(
            history.len() >= self.min_history(),
            "history ({}) shorter than required ({})",
            history.len(),
            self.min_history()
        );
        let p = self.ar_coef.len();
        let q = self.ma_coef.len();

        // Reconstruct recent innovations from the long AR; future ones are 0.
        let innov = innovations(&self.long_ar, history);
        let mut e_lags: Vec<f64> = innov.iter().rev().take(q).copied().collect();
        let mut y_lags: Vec<f64> = history.iter().rev().take(p).copied().collect();

        let mut out = Vec::with_capacity(h);
        for _ in 0..h {
            let mut y = self.intercept;
            for (c, l) in self.ar_coef.iter().zip(&y_lags) {
                y += c * l;
            }
            for (c, l) in self.ma_coef.iter().zip(&e_lags) {
                y += c * l;
            }
            out.push(y);
            if p > 0 {
                y_lags.rotate_right(1);
                y_lags[0] = y;
            }
            if q > 0 {
                e_lags.rotate_right(1);
                e_lags[0] = 0.0; // expected future innovation
            }
        }
        out
    }

    fn name(&self) -> &str {
        "ARMA"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn simulate_arma(n: usize, phi: f64, theta: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![0.0f64; n];
        let mut prev_e = 0.0;
        for t in 1..n {
            let e: f64 = rng.random_range(-0.5..0.5);
            y[t] = 10.0 + phi * (y[t - 1] - 10.0) + e + theta * prev_e;
            prev_e = e;
        }
        y
    }

    #[test]
    fn fits_and_predicts_simulated_arma_process() {
        let y = simulate_arma(2000, 0.7, 0.4, 42);
        let model = ArmaModel::fit(
            &y,
            &ArmaConfig {
                p: 1,
                q: 1,
                long_ar_order: Some(20),
                ridge_lambda: 1e-8,
                stride: 1,
            },
        )
        .unwrap();
        // One-step predictions should beat the unconditional mean.
        let mut err_model = 0.0;
        let mut err_mean = 0.0;
        for t in 1500..1999 {
            let pred = model.predict(&y[..t], 1);
            err_model += (pred - y[t]).powi(2);
            err_mean += (10.0 - y[t]).powi(2);
        }
        assert!(
            err_model < err_mean,
            "ARMA should beat the mean: {err_model} vs {err_mean}"
        );
    }

    #[test]
    fn long_horizon_converges_towards_process_mean() {
        let y = simulate_arma(1500, 0.5, 0.3, 7);
        let model = ArmaModel::fit(
            &y,
            &ArmaConfig {
                p: 1,
                q: 1,
                long_ar_order: Some(15),
                ridge_lambda: 1e-8,
                stride: 1,
            },
        )
        .unwrap();
        let far = model.predict(&y, 200);
        assert!(
            (far - 10.0).abs() < 1.0,
            "far prediction {far} should be near 10"
        );
    }

    #[test]
    fn horizon_matches_point_predictions() {
        let y = simulate_arma(1200, 0.6, 0.2, 3);
        let model = ArmaModel::fit(
            &y,
            &ArmaConfig {
                p: 2,
                q: 2,
                long_ar_order: Some(15),
                ridge_lambda: 1e-8,
                stride: 1,
            },
        )
        .unwrap();
        let h = model.predict_horizon(&y, 4);
        for (tau, v) in h.iter().enumerate() {
            assert_eq!(model.predict(&y, tau + 1), *v);
        }
    }

    #[test]
    fn rejects_short_series() {
        let err = ArmaModel::fit(&[1.0; 30], &ArmaConfig::default()).unwrap_err();
        assert!(matches!(err, FitError::NotEnoughData { .. }));
    }

    #[test]
    fn orders_are_reported() {
        let y = simulate_arma(1000, 0.5, 0.1, 11);
        let model = ArmaModel::fit(
            &y,
            &ArmaConfig {
                p: 3,
                q: 2,
                long_ar_order: Some(12),
                ridge_lambda: 1e-8,
                stride: 1,
            },
        )
        .unwrap();
        assert_eq!(model.p(), 3);
        assert_eq!(model.q(), 2);
    }
}
