//! Holt–Winters triple exponential smoothing (additive seasonality).
//!
//! A classic seasonal forecaster, included as an additional baseline next
//! to the paper's SPAR/ARMA/AR comparison (§5). Holt–Winters tracks a
//! level, a trend and one seasonal index per phase of the period,
//! updating them with exponential smoothing as observations arrive:
//!
//! ```text
//! level_t  = alpha * (y_t - season_{t-T}) + (1 - alpha) * (level + trend)
//! trend_t  = beta  * (level_t - level_{t-1}) + (1 - beta) * trend
//! season_t = gamma * (y_t - level_t) + (1 - gamma) * season_{t-T}
//! yhat_{t+tau} = level + tau * trend + season_{t+tau-T}
//! ```
//!
//! Unlike SPAR it cannot exploit multiple previous periods (`n > 1`) or a
//! window of recent offsets, which is why SPAR wins on the B2W load; but
//! it is cheap, fully online, and a strong sanity baseline.

use crate::model::{FitError, LoadPredictor};

/// Configuration for a Holt–Winters fit.
#[derive(Debug, Clone)]
pub struct HoltWintersConfig {
    /// Season length `T` in slots.
    pub period: usize,
    /// Level smoothing factor in (0, 1).
    pub alpha: f64,
    /// Trend smoothing factor in [0, 1).
    pub beta: f64,
    /// Seasonal smoothing factor in [0, 1).
    pub gamma: f64,
}

impl Default for HoltWintersConfig {
    fn default() -> Self {
        HoltWintersConfig {
            period: 1440,
            alpha: 0.3,
            beta: 0.01,
            gamma: 0.2,
        }
    }
}

/// A fitted Holt–Winters model.
///
/// `fit` runs the smoothing recursions over the training series to obtain
/// the terminal state; `predict` re-runs them over the supplied history so
/// forecasts always reflect the latest observations (the model itself is
/// stateless between calls, like the other predictors in this crate).
#[derive(Debug, Clone)]
pub struct HoltWintersModel {
    cfg: HoltWintersConfig,
}

/// Smoothing state: level, trend, and per-phase seasonal indices.
#[derive(Debug, Clone)]
struct HwState {
    level: f64,
    trend: f64,
    season: Vec<f64>,
}

impl HoltWintersModel {
    /// Validates the configuration against the training series and returns
    /// the model. (Holt–Winters has no least-squares fit; the smoothing
    /// factors are hyper-parameters and the state is recomputed from
    /// history at prediction time.)
    ///
    /// # Errors
    /// Returns [`FitError::NotEnoughData`] when `train` spans fewer than
    /// two full periods.
    pub fn fit(train: &[f64], cfg: &HoltWintersConfig) -> Result<Self, FitError> {
        assert!(cfg.period > 0, "period must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.alpha) && cfg.alpha > 0.0,
            "alpha in (0,1)"
        );
        assert!((0.0..1.0).contains(&cfg.beta), "beta in [0,1)");
        assert!((0.0..1.0).contains(&cfg.gamma), "gamma in [0,1)");
        if train.len() < 2 * cfg.period {
            return Err(FitError::NotEnoughData {
                required: 2 * cfg.period,
                available: train.len(),
            });
        }
        Ok(HoltWintersModel { cfg: cfg.clone() })
    }

    fn run(&self, data: &[f64]) -> HwState {
        let t_len = self.cfg.period;
        // Initial level/trend from the first two periods; initial seasonal
        // indices from the first period's deviation from its mean.
        let first_mean: f64 = data[..t_len].iter().sum::<f64>() / t_len as f64;
        let second_mean: f64 = data[t_len..2 * t_len].iter().sum::<f64>() / t_len as f64;
        let mut state = HwState {
            level: first_mean,
            trend: (second_mean - first_mean) / t_len as f64,
            season: data[..t_len].iter().map(|y| y - first_mean).collect(),
        };
        for (t, &y) in data.iter().enumerate().skip(t_len) {
            let phase = t % t_len;
            let seasonal = state.season[phase];
            let prev_level = state.level;
            state.level = self.cfg.alpha * (y - seasonal)
                + (1.0 - self.cfg.alpha) * (state.level + state.trend);
            state.trend =
                self.cfg.beta * (state.level - prev_level) + (1.0 - self.cfg.beta) * state.trend;
            state.season[phase] =
                self.cfg.gamma * (y - state.level) + (1.0 - self.cfg.gamma) * seasonal;
        }
        state
    }

    /// The configuration.
    pub fn config(&self) -> &HoltWintersConfig {
        &self.cfg
    }
}

impl LoadPredictor for HoltWintersModel {
    fn min_history(&self) -> usize {
        2 * self.cfg.period
    }

    fn predict(&self, history: &[f64], tau: usize) -> f64 {
        assert!(tau >= 1, "tau must be at least 1");
        self.predict_horizon(history, tau)[tau - 1]
    }

    fn predict_horizon(&self, history: &[f64], h: usize) -> Vec<f64> {
        assert!(
            history.len() >= self.min_history(),
            "history shorter than two periods"
        );
        let state = self.run(history);
        let t_len = self.cfg.period;
        (1..=h)
            .map(|tau| {
                let phase = (history.len() + tau - 1) % t_len;
                state.level + tau as f64 * state.trend + state.season[phase]
            })
            .collect()
    }

    fn name(&self) -> &str {
        "Holt-Winters"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;
    use crate::metrics::mre;

    fn seasonal_signal(period: usize, len: usize, trend: f64) -> Vec<f64> {
        (0..len)
            .map(|t| {
                let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
                100.0 + trend * t as f64 + 30.0 * phase.sin()
            })
            .collect()
    }

    #[test]
    fn tracks_a_pure_seasonal_signal() {
        let period = 48;
        let data = seasonal_signal(period, period * 10, 0.0);
        let model = HoltWintersModel::fit(
            &data[..period * 8],
            &HoltWintersConfig {
                period,
                ..HoltWintersConfig::default()
            },
        )
        .unwrap();
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for t in period * 8..data.len() - 4 {
            preds.push(model.predict(&data[..t], 4));
            actuals.push(data[t - 1 + 4]);
        }
        let err = mre(&preds, &actuals).unwrap();
        assert!(err < 0.03, "MRE on clean seasonal signal: {err}");
    }

    #[test]
    fn captures_linear_trend() {
        let period = 24;
        let data = seasonal_signal(period, period * 12, 0.5);
        let model = HoltWintersModel::fit(
            &data,
            &HoltWintersConfig {
                period,
                alpha: 0.4,
                beta: 0.05,
                gamma: 0.2,
            },
        )
        .unwrap();
        // Far-ahead prediction must keep climbing with the trend.
        let near = model.predict(&data, 1);
        let far = model.predict(&data, period);
        assert!(far > near, "trend not extrapolated: {near} vs {far}");
    }

    #[test]
    fn horizon_matches_point_predictions() {
        let data = seasonal_signal(24, 24 * 8, 0.1);
        let model = HoltWintersModel::fit(
            &data,
            &HoltWintersConfig {
                period: 24,
                ..HoltWintersConfig::default()
            },
        )
        .unwrap();
        let h = model.predict_horizon(&data, 6);
        for (i, v) in h.iter().enumerate() {
            assert_eq!(model.predict(&data, i + 1), *v);
        }
    }

    #[test]
    fn rejects_short_training() {
        let err = HoltWintersModel::fit(
            &[1.0; 30],
            &HoltWintersConfig {
                period: 24,
                ..HoltWintersConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FitError::NotEnoughData { .. }));
    }

    #[test]
    fn spar_beats_holt_winters_on_b2w_load() {
        // SPAR exploits multiple previous periods and a recent-offset
        // window; Holt-Winters has one exponential seasonal memory. On the
        // noisy multi-scale B2W load SPAR should win at tau = 60.
        use crate::generators::B2wLoadModel;
        use crate::spar::{SparConfig, SparModel};
        let load = B2wLoadModel::default().generate(32);
        let data = load.values();
        let train = 28 * 1440;
        let spar = SparModel::fit(&data[..train], &SparConfig::b2w_default()).unwrap();
        let hw = HoltWintersModel::fit(&data[..train], &HoltWintersConfig::default()).unwrap();
        let eval = |m: &dyn LoadPredictor| {
            let mut preds = Vec::new();
            let mut actuals = Vec::new();
            let mut t = train;
            while t - 1 + 60 < data.len() {
                preds.push(m.predict(&data[..t], 60));
                actuals.push(data[t - 1 + 60]);
                t += 173;
            }
            mre(&preds, &actuals).unwrap()
        };
        let e_spar = eval(&spar);
        let e_hw = eval(&hw);
        assert!(
            e_spar < e_hw,
            "SPAR {e_spar:.4} should beat Holt-Winters {e_hw:.4}"
        );
    }
}
