//! Classical seasonal decomposition of load series.
//!
//! Splits a series into **trend** (centred moving average over one period),
//! **seasonal** (per-phase means of the detrended series, zero-centred) and
//! **residual** components — the standard additive decomposition. Useful
//! for characterising a workload before choosing predictor parameters:
//! the *seasonal strength* statistic quantifies how much of the variance
//! the daily pattern explains (high for B2W-like retail load, lower for
//! the German-Wikipedia-like series), which is exactly the property that
//! determines how well SPAR will do (§5).

/// ```
/// use pstore_forecast::decompose::decompose;
/// let daily: Vec<f64> = (0..24 * 4)
///     .map(|h| 100.0 + 30.0 * (2.0 * std::f64::consts::PI * (h % 24) as f64 / 24.0).sin())
///     .collect();
/// let d = decompose(&daily, 24);
/// assert!(d.seasonal_strength() > 0.9);
/// ```
///
/// An additive decomposition `y = trend + seasonal + residual`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Period used, in slots.
    pub period: usize,
    /// Centred moving-average trend (same length as the input).
    pub trend: Vec<f64>,
    /// Seasonal component (repeats with `period`, zero mean).
    pub seasonal: Vec<f64>,
    /// What remains.
    pub residual: Vec<f64>,
}

impl Decomposition {
    /// Seasonal strength in `[0, 1]`: `max(0, 1 - Var(resid) /
    /// Var(seasonal + resid))`. Values near 1 mean the period explains
    /// almost everything (Hyndman's FS statistic).
    pub fn seasonal_strength(&self) -> f64 {
        strength(&self.residual, &add(&self.seasonal, &self.residual))
    }

    /// Trend strength in `[0, 1]`: `max(0, 1 - Var(resid) / Var(trend +
    /// resid))`.
    pub fn trend_strength(&self) -> f64 {
        strength(&self.residual, &add(&self.trend, &self.residual))
    }
}

fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn variance(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64
}

fn strength(resid: &[f64], with: &[f64]) -> f64 {
    let vw = variance(with);
    if vw <= 0.0 {
        return 0.0;
    }
    (1.0 - variance(resid) / vw).max(0.0)
}

/// Decomposes `data` with the given period.
///
/// # Panics
/// Panics if `period < 2` or `data` spans fewer than two periods.
pub fn decompose(data: &[f64], period: usize) -> Decomposition {
    assert!(period >= 2, "period must be at least 2");
    assert!(
        data.len() >= 2 * period,
        "need at least two periods of data"
    );
    let n = data.len();

    // Centred moving average of window `period` (uses a window of
    // period+1 with half-weights at the ends when the period is even, the
    // textbook construction; edges fall back to the available window).
    let mut trend = vec![0.0; n];
    let half = period / 2;
    for (i, t) in trend.iter_mut().enumerate() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        *t = data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
    }

    // Seasonal: per-phase mean of the detrended series, centred to zero.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for i in 0..n {
        phase_sum[i % period] += data[i] - trend[i];
        phase_count[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| s / c.max(1) as f64)
        .collect();
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for m in &mut phase_mean {
        *m -= grand;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| phase_mean[i % period]).collect();
    let residual: Vec<f64> = (0..n).map(|i| data[i] - trend[i] - seasonal[i]).collect();
    Decomposition {
        period,
        trend,
        seasonal,
        residual,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;

    fn wave(period: usize, len: usize, amp: f64, slope: f64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
                100.0 + slope * i as f64 + amp * phase.sin()
            })
            .collect()
    }

    #[test]
    fn components_reassemble_the_series() {
        let data = wave(24, 24 * 6, 30.0, 0.1);
        let d = decompose(&data, 24);
        for (i, &y) in data.iter().enumerate() {
            let recon = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((recon - y).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_component_has_zero_mean_and_right_period() {
        let data = wave(24, 24 * 8, 30.0, 0.0);
        let d = decompose(&data, 24);
        let mean: f64 = d.seasonal[..24].iter().sum::<f64>() / 24.0;
        assert!(mean.abs() < 1e-9);
        // Repeats exactly.
        for i in 0..24 {
            assert_eq!(d.seasonal[i], d.seasonal[i + 24]);
        }
    }

    #[test]
    fn pure_seasonal_signal_scores_high_strength() {
        let data = wave(24, 24 * 10, 40.0, 0.0);
        let d = decompose(&data, 24);
        assert!(
            d.seasonal_strength() > 0.95,
            "strength {}",
            d.seasonal_strength()
        );
    }

    #[test]
    fn white_noise_scores_low_strength() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..24 * 10).map(|_| rng.random_range(0.0..1.0)).collect();
        let d = decompose(&data, 24);
        assert!(
            d.seasonal_strength() < 0.4,
            "strength {}",
            d.seasonal_strength()
        );
    }

    #[test]
    fn trend_strength_sees_the_slope() {
        let flat = wave(24, 24 * 8, 10.0, 0.0);
        let sloped = wave(24, 24 * 8, 10.0, 2.0);
        let df = decompose(&flat, 24);
        let ds = decompose(&sloped, 24);
        assert!(ds.trend_strength() > df.trend_strength());
        assert!(ds.trend_strength() > 0.9);
    }

    #[test]
    fn b2w_load_is_strongly_seasonal_wikipedia_german_less_so() {
        use crate::generators::{B2wLoadModel, WikipediaEdition, WikipediaLoadModel};
        let b2w = B2wLoadModel::default().generate(7);
        let b2w_hourly = b2w.downsample_mean(60);
        let d_b2w = decompose(b2w_hourly.values(), 24);

        let de = WikipediaLoadModel::new(WikipediaEdition::German, 5).generate(7);
        let d_de = decompose(de.values(), 24);

        assert!(
            d_b2w.seasonal_strength() > d_de.seasonal_strength(),
            "B2W {} vs DE {}",
            d_b2w.seasonal_strength(),
            d_de.seasonal_strength()
        );
        assert!(d_b2w.seasonal_strength() > 0.8);
    }

    #[test]
    #[should_panic(expected = "two periods")]
    fn rejects_short_series() {
        let _ = decompose(&[1.0; 30], 24);
    }
}
