//! Forecast accuracy metrics.
//!
//! The paper reports Mean Relative Error (MRE) — "the deviation of the
//! predictions from the actual data" (§5) — which we take as
//! `mean(|pred - actual| / actual)` over slots with non-negligible actual
//! load. MAE/RMSE/MAPE/sMAPE are provided for completeness.

/// Mean relative error: `mean(|pred - actual| / |actual|)`, skipping slots
/// where `|actual| < eps` to avoid division blow-ups on idle periods.
///
/// Returns `None` if the inputs are empty or every slot is skipped.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mre(pred: &[f64], actual: &[f64]) -> Option<f64> {
    assert_eq!(pred.len(), actual.len(), "series must have equal length");
    let eps = 1e-9;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in pred.iter().zip(actual) {
        if a.abs() < eps {
            continue;
        }
        sum += (p - a).abs() / a.abs();
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Mean absolute error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "series must have equal length");
    assert!(!pred.is_empty(), "series must be non-empty");
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "series must have equal length");
    assert!(!pred.is_empty(), "series must be non-empty");
    (pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error, in percent (100 x MRE).
pub fn mape(pred: &[f64], actual: &[f64]) -> Option<f64> {
    mre(pred, actual).map(|m| m * 100.0)
}

/// Symmetric MAPE in percent: `mean(2|p-a| / (|p|+|a|)) * 100`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn smape(pred: &[f64], actual: &[f64]) -> Option<f64> {
    assert_eq!(pred.len(), actual.len(), "series must have equal length");
    let eps = 1e-9;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in pred.iter().zip(actual) {
        let denom = p.abs() + a.abs();
        if denom < eps {
            continue;
        }
        sum += 2.0 * (p - a).abs() / denom;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64 * 100.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny values
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mre(&a, &a), Some(0.0));
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(smape(&a, &a), Some(0.0));
    }

    #[test]
    fn mre_matches_hand_computed_value() {
        // errors: |9-10|/10 = 0.1, |22-20|/20 = 0.1 -> mean 0.1
        let pred = [9.0, 22.0];
        let actual = [10.0, 20.0];
        let m = mre(&pred, &actual).unwrap();
        assert!((m - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mre_skips_zero_actuals() {
        let pred = [5.0, 11.0];
        let actual = [0.0, 10.0];
        let m = mre(&pred, &actual).unwrap();
        assert!((m - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mre_empty_or_all_zero_is_none() {
        assert_eq!(mre(&[], &[]), None);
        assert_eq!(mre(&[1.0], &[0.0]), None);
    }

    #[test]
    fn mae_and_rmse_on_constant_offset() {
        let pred = [2.0, 3.0, 4.0];
        let actual = [1.0, 2.0, 3.0];
        assert!((mae(&pred, &actual) - 1.0).abs() < 1e-12);
        assert!((rmse(&pred, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_penalises_outliers_more_than_mae() {
        let pred = [0.0, 0.0, 3.0];
        let actual = [0.0, 0.0, 0.0];
        assert!(rmse(&pred, &actual) > mae(&pred, &actual));
    }

    #[test]
    fn mape_is_percent_mre() {
        let pred = [11.0];
        let actual = [10.0];
        assert!((mape(&pred, &actual).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn smape_is_symmetric() {
        let a = [10.0, 20.0];
        let b = [12.0, 18.0];
        assert_eq!(smape(&a, &b), smape(&b, &a));
    }
}
