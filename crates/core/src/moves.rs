//! Moves: reconfigurations between cluster sizes (§4.3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single move: a reconfiguration from `from` machines to `to` machines
/// occupying the planning intervals `[start, end)`.
///
/// `from == to` is the "do nothing" move, which by construction always lasts
/// exactly one interval (Algorithm 2, line 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// First interval of the move (inclusive).
    pub start: usize,
    /// End interval of the move (exclusive); `end > start`.
    pub end: usize,
    /// Machines allocated before the move.
    pub from: u32,
    /// Machines allocated after the move.
    pub to: u32,
}

impl Move {
    /// Whether this is a "do nothing" move.
    pub fn is_noop(&self) -> bool {
        self.from == self.to
    }

    /// Whether this move adds machines.
    pub fn is_scale_out(&self) -> bool {
        self.to > self.from
    }

    /// Whether this move removes machines.
    pub fn is_scale_in(&self) -> bool {
        self.to < self.from
    }

    /// Duration in intervals.
    pub fn duration(&self) -> usize {
        self.end - self.start
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_noop() {
            write!(f, "[{}..{}) hold {}", self.start, self.end, self.from)
        } else {
            write!(
                f,
                "[{}..{}) {} -> {} machines",
                self.start, self.end, self.from, self.to
            )
        }
    }
}

/// A contiguous, non-overlapping sequence of moves ordered by starting time
/// — the output of the predictive elasticity planner (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MoveSeq {
    moves: Vec<Move>,
}

impl MoveSeq {
    /// Builds a sequence, validating contiguity and consistency.
    ///
    /// # Panics
    /// Panics if moves are not contiguous in time or machine counts do not
    /// chain (`moves[i].to == moves[i+1].from`).
    pub fn new(moves: Vec<Move>) -> Self {
        for w in moves.windows(2) {
            assert_eq!(
                w[0].end, w[1].start,
                "moves must be contiguous in time: {} then {}",
                w[0], w[1]
            );
            assert_eq!(
                w[0].to, w[1].from,
                "machine counts must chain: {} then {}",
                w[0], w[1]
            );
        }
        for m in &moves {
            assert!(m.end > m.start, "moves must have positive duration: {m}");
        }
        MoveSeq { moves }
    }

    /// The moves in execution order.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The first move that actually changes the cluster size, if any.
    pub fn first_reconfiguration(&self) -> Option<&Move> {
        self.moves.iter().find(|m| !m.is_noop())
    }

    /// Machine count at the end of the sequence (`None` when empty).
    pub fn final_machines(&self) -> Option<u32> {
        self.moves.last().map(|m| m.to)
    }

    /// Nominal machine count at the *end* of interval `t`: during a move
    /// the pre-move count (`from`) is reported, switching to `to` once the
    /// move completes at `t == end`. Intra-move allocation detail lives in
    /// the cost model (Algorithm 4), not here. Returns `None` only for an
    /// empty sequence.
    pub fn machines_at(&self, t: usize) -> Option<u32> {
        let first = self.moves.first()?;
        if t < first.start {
            return Some(first.from);
        }
        for m in &self.moves {
            if t < m.end {
                return Some(m.from);
            }
        }
        self.final_machines()
    }

    /// Total cost in machine-intervals using the nominal (post-move)
    /// allocation per move; the planner's internal cost additionally models
    /// intra-move allocation (Algorithm 4).
    pub fn nominal_cost(&self) -> f64 {
        self.moves
            .iter()
            .map(|m| m.duration() as f64 * m.to.max(m.from) as f64)
            .sum()
    }
}

impl fmt::Display for MoveSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for m in &self.moves {
            if !first {
                write!(f, "; ")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_classification() {
        let out = Move {
            start: 0,
            end: 2,
            from: 3,
            to: 5,
        };
        assert!(out.is_scale_out() && !out.is_scale_in() && !out.is_noop());
        let in_ = Move {
            start: 0,
            end: 2,
            from: 5,
            to: 3,
        };
        assert!(in_.is_scale_in());
        let noop = Move {
            start: 0,
            end: 1,
            from: 3,
            to: 3,
        };
        assert!(noop.is_noop());
        assert_eq!(noop.duration(), 1);
    }

    #[test]
    fn sequence_accepts_contiguous_chain() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 4,
                from: 2,
                to: 4,
            },
        ]);
        assert_eq!(seq.final_machines(), Some(4));
        assert_eq!(seq.first_reconfiguration().unwrap().to, 4);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn sequence_rejects_time_gap() {
        MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 2,
                end: 3,
                from: 2,
                to: 3,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn sequence_rejects_count_mismatch() {
        MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 3,
                from: 3,
                to: 4,
            },
        ]);
    }

    #[test]
    fn machines_at_reports_the_timeline() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 4,
                from: 2,
                to: 5,
            },
            Move {
                start: 4,
                end: 5,
                from: 5,
                to: 5,
            },
        ]);
        assert_eq!(seq.machines_at(0), Some(2));
        assert_eq!(seq.machines_at(2), Some(2)); // mid-move: pre-move count
        assert_eq!(seq.machines_at(4), Some(5)); // move landed
        assert_eq!(seq.machines_at(99), Some(5));
        assert_eq!(MoveSeq::default().machines_at(0), None);
    }

    #[test]
    fn first_reconfiguration_skips_noops() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 2,
                from: 2,
                to: 2,
            },
        ]);
        assert!(seq.first_reconfiguration().is_none());
    }
}
