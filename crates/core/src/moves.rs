//! Moves: reconfigurations between cluster sizes (§4.3).

use crate::invariant::{InvariantId, Violation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single move: a reconfiguration from `from` machines to `to` machines
/// occupying the planning intervals `[start, end)`.
///
/// `from == to` is the "do nothing" move, which by construction always lasts
/// exactly one interval (Algorithm 2, line 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// First interval of the move (inclusive).
    pub start: usize,
    /// End interval of the move (exclusive); `end > start`.
    pub end: usize,
    /// Machines allocated before the move.
    pub from: u32,
    /// Machines allocated after the move.
    pub to: u32,
}

impl Move {
    /// Whether this is a "do nothing" move.
    pub fn is_noop(&self) -> bool {
        self.from == self.to
    }

    /// Whether this move adds machines.
    pub fn is_scale_out(&self) -> bool {
        self.to > self.from
    }

    /// Whether this move removes machines.
    pub fn is_scale_in(&self) -> bool {
        self.to < self.from
    }

    /// Duration in intervals.
    pub fn duration(&self) -> usize {
        self.end - self.start
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_noop() {
            write!(f, "[{}..{}) hold {}", self.start, self.end, self.from)
        } else {
            write!(
                f,
                "[{}..{}) {} -> {} machines",
                self.start, self.end, self.from, self.to
            )
        }
    }
}

/// A contiguous, non-overlapping sequence of moves ordered by starting time
/// — the output of the predictive elasticity planner (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MoveSeq {
    moves: Vec<Move>,
}

impl MoveSeq {
    /// Builds a sequence, validating contiguity and consistency.
    ///
    /// # Panics
    /// Panics if the moves violate any `MOV-*` invariant of
    /// [`check_moves`]: non-contiguous in time, machine counts that do not
    /// chain (`moves[i].to == moves[i+1].from`), non-positive durations,
    /// or multi-interval no-ops.
    pub fn new(moves: Vec<Move>) -> Self {
        let violations = check_moves(&moves);
        assert!(
            violations.is_empty(),
            "invalid move sequence: {}",
            crate::invariant::report(&violations)
        );
        MoveSeq { moves }
    }

    /// The moves in execution order.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The first move that actually changes the cluster size, if any.
    pub fn first_reconfiguration(&self) -> Option<&Move> {
        self.moves.iter().find(|m| !m.is_noop())
    }

    /// Machine count at the end of the sequence (`None` when empty).
    pub fn final_machines(&self) -> Option<u32> {
        self.moves.last().map(|m| m.to)
    }

    /// Nominal machine count at the *end* of interval `t`: during a move
    /// the pre-move count (`from`) is reported, switching to `to` once the
    /// move completes at `t == end`. Intra-move allocation detail lives in
    /// the cost model (Algorithm 4), not here. Returns `None` only for an
    /// empty sequence.
    pub fn machines_at(&self, t: usize) -> Option<u32> {
        let first = self.moves.first()?;
        if t < first.start {
            return Some(first.from);
        }
        for m in &self.moves {
            if t < m.end {
                return Some(m.from);
            }
        }
        self.final_machines()
    }

    /// Total cost in machine-intervals using the nominal (post-move)
    /// allocation per move; the planner's internal cost additionally models
    /// intra-move allocation (Algorithm 4).
    pub fn nominal_cost(&self) -> f64 {
        self.moves
            .iter()
            .map(|m| m.duration() as f64 * m.to.max(m.from) as f64)
            .sum()
    }
}

/// Checks the structural `MOV-*` invariants of a would-be move sequence
/// (Algorithm 2): `MOV-01` contiguous tiling, `MOV-02` positive duration,
/// `MOV-03` single-interval no-ops, `MOV-04` machine-count chaining.
///
/// This is the single source of truth shared by [`MoveSeq::new`]'s
/// assertions and the `pstore-verify` checker.
pub fn check_moves(moves: &[Move]) -> Vec<Violation> {
    let artifact = || {
        let chain: Vec<String> = moves.iter().map(ToString::to_string).collect();
        format!("moves [{}]", chain.join("; "))
    };
    let mut out = Vec::new();
    for w in moves.windows(2) {
        if w[0].end != w[1].start {
            out.push(Violation::new(
                InvariantId::MoveTiling,
                artifact(),
                format!("moves must be contiguous in time: {} then {}", w[0], w[1]),
            ));
        }
        if w[0].to != w[1].from {
            out.push(Violation::new(
                InvariantId::MoveChaining,
                artifact(),
                format!("machine counts must chain: {} then {}", w[0], w[1]),
            ));
        }
    }
    for m in moves {
        if m.end <= m.start {
            out.push(Violation::new(
                InvariantId::MoveDuration,
                artifact(),
                format!("moves must have positive duration: {m}"),
            ));
        } else if m.is_noop() && m.duration() != 1 {
            out.push(Violation::new(
                InvariantId::MoveNoopUnit,
                artifact(),
                format!("noop moves must last exactly one interval: {m}"),
            ));
        }
    }
    out
}

impl fmt::Display for MoveSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for m in &self.moves {
            if !first {
                write!(f, "; ")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_classification() {
        let out = Move {
            start: 0,
            end: 2,
            from: 3,
            to: 5,
        };
        assert!(out.is_scale_out() && !out.is_scale_in() && !out.is_noop());
        let in_ = Move {
            start: 0,
            end: 2,
            from: 5,
            to: 3,
        };
        assert!(in_.is_scale_in());
        let noop = Move {
            start: 0,
            end: 1,
            from: 3,
            to: 3,
        };
        assert!(noop.is_noop());
        assert_eq!(noop.duration(), 1);
    }

    #[test]
    fn check_moves_flags_bad_durations_and_long_noops() {
        // MOV-02: a move must have positive duration.
        let v = check_moves(&[Move {
            start: 2,
            end: 2,
            from: 3,
            to: 4,
        }]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantId::MoveDuration);

        // MOV-03: a no-op "move" stands for one interval of staying put,
        // so it must last exactly one interval.
        let v = check_moves(&[Move {
            start: 0,
            end: 3,
            from: 3,
            to: 3,
        }]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantId::MoveNoopUnit);

        // A unit-length no-op is clean.
        assert!(check_moves(&[Move {
            start: 0,
            end: 1,
            from: 3,
            to: 3,
        }])
        .is_empty());
    }

    #[test]
    fn sequence_accepts_contiguous_chain() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 4,
                from: 2,
                to: 4,
            },
        ]);
        assert_eq!(seq.final_machines(), Some(4));
        assert_eq!(seq.first_reconfiguration().unwrap().to, 4);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn sequence_rejects_time_gap() {
        MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 2,
                end: 3,
                from: 2,
                to: 3,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn sequence_rejects_count_mismatch() {
        MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 3,
                from: 3,
                to: 4,
            },
        ]);
    }

    #[test]
    fn machines_at_reports_the_timeline() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 4,
                from: 2,
                to: 5,
            },
            Move {
                start: 4,
                end: 5,
                from: 5,
                to: 5,
            },
        ]);
        assert_eq!(seq.machines_at(0), Some(2));
        assert_eq!(seq.machines_at(2), Some(2)); // mid-move: pre-move count
        assert_eq!(seq.machines_at(4), Some(5)); // move landed
        assert_eq!(seq.machines_at(99), Some(5));
        assert_eq!(MoveSeq::default().machines_at(0), None);
    }

    #[test]
    fn first_reconfiguration_skips_noops() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 2,
                from: 2,
                to: 2,
            },
        ]);
        assert!(seq.first_reconfiguration().is_none());
    }
}
