//! Partition plans: mapping the hash space to machines, and the Scheduler
//! component (§6) that turns a planned move into a concrete reassignment in
//! which every sender ships an equal amount of data to every receiver
//! (§4.4.1).
//!
//! The hash space is divided into a fixed number of *virtual slots*; a plan
//! assigns each slot to a machine. Live migration then moves slot ranges
//! between machines. Keeping slot counts per machine within ±1 of each
//! other preserves the even-data invariant the migration model assumes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Assignment of virtual hash slots to machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotPlan {
    /// `slots[i]` = machine owning virtual slot `i`.
    slots: Vec<u32>,
    /// Number of machines in the cluster.
    machines: u32,
}

/// A batch of slots moving from one machine to another as part of a
/// reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTransfer {
    /// Sending machine.
    pub from: u32,
    /// Receiving machine.
    pub to: u32,
    /// The slot indices to move.
    pub slots: Vec<usize>,
}

impl SlotPlan {
    /// Creates a balanced plan over `machines` machines with `num_slots`
    /// virtual slots (slot `i` goes to machine `i % machines`).
    ///
    /// # Panics
    /// Panics if `machines == 0` or `num_slots < machines`.
    #[allow(clippy::cast_possible_truncation)] // the modulo bounds each id below `machines`
    pub fn balanced(machines: u32, num_slots: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(
            num_slots >= machines as usize,
            "need at least one slot per machine"
        );
        SlotPlan {
            slots: (0..num_slots)
                .map(|i| (i % machines as usize) as u32)
                .collect(),
            machines,
        }
    }

    /// Builds a plan from an explicit assignment (used by skew-driven
    /// rebalancers that compute placements directly).
    ///
    /// # Panics
    /// Panics if `slots` is empty, `machines` is zero, or any assignment
    /// references a machine `>= machines`.
    pub fn from_assignments(slots: Vec<u32>, machines: u32) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(!slots.is_empty(), "need at least one slot");
        assert!(
            slots.iter().all(|&m| m < machines),
            "assignment references a machine beyond the cluster"
        );
        SlotPlan { slots, machines }
    }

    /// Number of virtual slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of machines.
    pub fn machines(&self) -> u32 {
        self.machines
    }

    /// Machine owning `slot`.
    pub fn owner(&self, slot: usize) -> u32 {
        self.slots[slot]
    }

    /// The slot assignment.
    pub fn assignments(&self) -> &[u32] {
        &self.slots
    }

    /// Slots per machine.
    pub fn slots_per_machine(&self) -> BTreeMap<u32, usize> {
        let mut counts: BTreeMap<u32, usize> = (0..self.machines).map(|m| (m, 0)).collect();
        for &m in &self.slots {
            *counts.entry(m).or_default() += 1;
        }
        counts
    }

    /// Whether slot counts per machine differ by at most one (the even-data
    /// invariant of §4.4.1).
    pub fn is_balanced(&self) -> bool {
        let counts = self.slots_per_machine();
        let min = counts.values().copied().min().unwrap_or(0);
        let max = counts.values().copied().max().unwrap_or(0);
        max - min <= 1
    }

    /// The Scheduler: computes the new plan and the per-pair slot transfers
    /// for a move to `target` machines.
    ///
    /// On scale-out, machines `machines..target` are new and every existing
    /// machine sheds an equal share to each of them; on scale-in, machines
    /// `target..machines` are drained evenly into the survivors. The
    /// resulting plan is balanced and only transfers the minimum number of
    /// slots (`num_slots * |1/old - 1/new|` up to rounding).
    ///
    /// # Panics
    /// Panics if `target == 0` or `target > num_slots`.
    pub fn rebalance_to(&self, target: u32) -> (SlotPlan, Vec<SlotTransfer>) {
        assert!(target > 0, "target must be positive");
        assert!(
            (target as usize) <= self.slots.len(),
            "more machines than slots"
        );
        if target == self.machines {
            return (self.clone(), Vec::new());
        }

        let mut slots = self.slots.clone();
        let num = slots.len();
        let base = num / target as usize;
        let extra = num % target as usize;
        // Target counts: machines 0..extra get base+1 slots, rest get base.
        let target_count =
            |m: u32| -> usize { base + usize::from((m as usize) < extra && m < target) };

        let mut counts = vec![0usize; self.machines.max(target) as usize];
        for &m in &slots {
            counts[m as usize] += 1;
        }

        // Donors give away slots until they reach their target (0 for
        // machines being removed); takers fill up to theirs.
        let mut moves: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        let mut takers: Vec<u32> = (0..target)
            .filter(|&m| {
                (m as usize) < counts.len() && counts[m as usize] < target_count(m)
                    || (m as usize) >= counts.len()
            })
            .collect();
        // Walk donors round-robin over takers so every (donor, taker) pair
        // receives a near-equal share, matching the equal-pair-amount
        // schedule of §4.4.1.
        let mut taker_idx = 0usize;
        for donor in 0..self.machines {
            let goal = if donor < target {
                target_count(donor)
            } else {
                0
            };
            if counts[donor as usize] <= goal {
                continue;
            }
            let mut surplus = counts[donor as usize] - goal;
            let donor_slots: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|&(_, &m)| m == donor)
                .map(|(i, _)| i)
                .collect();
            let mut di = 0usize;
            while surplus > 0 {
                debug_assert!(!takers.is_empty(), "surplus with no takers");
                let taker = takers[taker_idx % takers.len()];
                let t_goal = target_count(taker);
                let t_have = counts[taker as usize];
                if t_have >= t_goal {
                    takers.retain(|&m| m != taker);
                    continue;
                }
                let slot = donor_slots[di];
                di += 1;
                slots[slot] = taker;
                counts[donor as usize] -= 1;
                counts[taker as usize] += 1;
                surplus -= 1;
                moves.entry((donor, taker)).or_default().push(slot);
                taker_idx += 1;
            }
        }

        let plan = SlotPlan {
            slots,
            machines: target,
        };
        debug_assert!(plan.is_balanced());
        let transfers = moves
            .into_iter()
            .map(|((from, to), s)| SlotTransfer { from, to, slots: s })
            .collect();
        (plan, transfers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_plan_is_balanced() {
        for machines in 1..=10u32 {
            let p = SlotPlan::balanced(machines, 64);
            assert!(p.is_balanced(), "{machines} machines");
            assert_eq!(p.num_slots(), 64);
        }
    }

    #[test]
    fn rebalance_scale_out_moves_minimum_slots() {
        let p = SlotPlan::balanced(2, 64);
        let (new, transfers) = p.rebalance_to(4);
        assert!(new.is_balanced());
        assert_eq!(new.machines(), 4);
        let moved: usize = transfers.iter().map(|t| t.slots.len()).sum();
        // Fraction moved = 1 - 2/4 = 1/2 of 64 slots.
        assert_eq!(moved, 32);
        // Senders are old machines; receivers are new.
        for t in &transfers {
            assert!(t.from < 2);
            assert!(t.to >= 2 && t.to < 4);
        }
    }

    #[test]
    fn rebalance_scale_in_drains_removed_machines() {
        let p = SlotPlan::balanced(4, 64);
        let (new, transfers) = p.rebalance_to(3);
        assert!(new.is_balanced());
        assert_eq!(new.machines(), 3);
        // Every slot owned by machine 3 must have moved.
        assert!(new.assignments().iter().all(|&m| m < 3));
        let moved: usize = transfers.iter().map(|t| t.slots.len()).sum();
        assert_eq!(moved, 16);
        for t in &transfers {
            assert_eq!(t.from, 3);
            assert!(t.to < 3);
        }
    }

    #[test]
    fn rebalance_noop() {
        let p = SlotPlan::balanced(3, 60);
        let (new, transfers) = p.rebalance_to(3);
        assert_eq!(new, p);
        assert!(transfers.is_empty());
    }

    #[test]
    fn senders_ship_nearly_equal_shares_to_each_receiver() {
        let p = SlotPlan::balanced(3, 42 * 14);
        let (_, transfers) = p.rebalance_to(14);
        // 3 senders x 11 receivers: every pair's share within 1 slot of the
        // mean.
        let total: usize = transfers.iter().map(|t| t.slots.len()).sum();
        let mean = total as f64 / transfers.len() as f64;
        assert_eq!(transfers.len(), 3 * 11);
        for t in &transfers {
            assert!(
                (t.slots.len() as f64 - mean).abs() <= 1.5,
                "pair {}->{} ships {} slots (mean {mean})",
                t.from,
                t.to,
                t.slots.len()
            );
        }
    }

    #[test]
    fn chained_rebalances_stay_balanced() {
        let mut plan = SlotPlan::balanced(2, 420);
        for &target in &[5u32, 9, 14, 7, 3, 10, 1, 6] {
            let (next, transfers) = plan.rebalance_to(target);
            assert!(next.is_balanced(), "unbalanced at target {target}");
            // Transfers must originate from actual owners.
            for t in &transfers {
                for &s in &t.slots {
                    assert_eq!(plan.owner(s), t.from);
                    assert_eq!(next.owner(s), t.to);
                }
            }
            plan = next;
        }
    }

    #[test]
    #[should_panic(expected = "more machines than slots")]
    fn rebalance_rejects_too_many_machines() {
        let p = SlotPlan::balanced(2, 4);
        let _ = p.rebalance_to(5);
    }
}
