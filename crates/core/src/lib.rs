//! P-Store predictive elasticity — the core algorithms of the SIGMOD 2018
//! paper *"P-Store: An Elastic Database System with Predictive
//! Provisioning"*.
//!
//! This crate contains the paper's primary contribution, independent of any
//! particular database engine:
//!
//! * [`cost_model`] — the analytical migration model: parallelism (Eq 2),
//!   move duration (Eq 3), move cost (Eq 4 + Algorithm 4), capacity (Eq 5)
//!   and effective capacity during reconfiguration (Eq 7).
//! * [`schedule`] — round-by-round migration schedules with just-in-time
//!   machine allocation (§4.4.1, Table 1, Fig 4), including the three-phase
//!   construction and a bipartite edge-colouring solver.
//! * [`planner`] — the dynamic program that chooses *when* to reconfigure
//!   and *how many* machines to use (Algorithms 1–3).
//! * [`partition_plan`] — the Scheduler that turns a move into an
//!   equal-share slot reassignment (§6).
//! * [`controller`] — the Predictive Controller plus the reactive, static,
//!   time-of-day and oracle baselines evaluated in §8.
//!
//! # Quick example
//!
//! ```
//! use pstore_core::planner::{Planner, PlannerConfig};
//!
//! let planner = Planner::new(PlannerConfig {
//!     q: 285.0,             // target txn/s per machine
//!     d_intervals: 15.5,    // D = 4646 s in 5-minute intervals
//!     partitions_per_node: 6,
//!     max_machines: 10,
//! });
//! // Load rises from 400 to 1600 txn/s over the next two hours.
//! let load: Vec<f64> = (0..24).map(|t| 400.0 + 50.0 * t as f64).collect();
//! let plan = planner.best_moves(&load, 2).expect("feasible plan");
//! assert!(plan.final_machines().unwrap() >= 6);
//! planner.verify_feasible(&plan, &load).unwrap();
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod cost_model;
pub mod invariant;
pub mod moves;
pub mod params;
pub mod partition_plan;
pub mod planner;
pub mod schedule;

pub use controller::{Action, Observation, ReconfigReason, ReconfigRequest, Strategy};
pub use invariant::{InvariantId, Violation};
pub use moves::{check_moves, Move, MoveSeq};
pub use params::SystemParams;
pub use partition_plan::{SlotPlan, SlotTransfer};
pub use planner::{Planner, PlannerConfig};
pub use schedule::MigrationSchedule;
