//! Structured invariant diagnostics shared by the library and the
//! `pstore-verify` static checker.
//!
//! Every paper-specified invariant the system relies on has a stable
//! identifier here, anchored to the section of the SIGMOD 2018 paper that
//! states it (see `docs/invariants.md` for the full catalogue). Checkers —
//! both the in-library `check_*` methods and the `pstore-verify` sweep —
//! report failures as [`Violation`] values instead of ad-hoc strings, so
//! the library and the verifier can never drift apart on what "valid"
//! means.

use std::fmt;

/// Identifier of one paper-specified invariant.
///
/// The `SCH-*` family covers migration schedules (§4.4.1, Table 1), the
/// `MOV-*` family move sequences (Algorithm 2), the `PLN-*` family planner
/// output (Algorithms 1–3, Fig 4), and the `FOR-*` family forecaster
/// output (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InvariantId {
    /// SCH-01: a `B -> A` schedule has exactly `max(s, Δ)` rounds, the
    /// theoretical minimum (§4.4.1).
    ScheduleRoundCount,
    /// SCH-02: every round is a matching — no machine appears in two
    /// transfers of the same round (§4.4.1).
    ScheduleRoundMatching,
    /// SCH-03: every (sender, receiver) pair transfers exactly once, so
    /// exactly `1/(A*B)` of the database moves per pair and data stays
    /// evenly spread (§4.4.1, data conservation).
    SchedulePairCoverage,
    /// SCH-04: transfers only involve machines that are allocated during
    /// that round (just-in-time allocation, Table 1).
    SchedulePresence,
    /// SCH-05: on scale-out only pre-existing machines send and only new
    /// machines receive; scale-in mirrors this (§4.4.1).
    ScheduleRoleDirection,
    /// SCH-06: the `B == A` no-op schedule has no rounds.
    ScheduleNoopEmpty,
    /// SCH-07: the scale-in schedule is the exact time-reverse of the
    /// corresponding scale-out schedule (§4.4.2).
    ScheduleReversal,
    /// SCH-08: the schedule-derived average machine allocation equals
    /// Algorithm 4's closed form.
    ScheduleAvgMachines,
    /// SCH-09: per-round parallelism never exceeds Equation 2's bound and
    /// is reached by at least one round.
    SchedulePeakParallelism,
    /// MOV-01: a move sequence tiles the planning horizon contiguously —
    /// each move starts where the previous one ended (Algorithm 2).
    MoveTiling,
    /// MOV-02: every move has positive duration (`end > start`).
    MoveDuration,
    /// MOV-03: "do nothing" moves last exactly one interval (Algorithm 2,
    /// line 9).
    MoveNoopUnit,
    /// MOV-04: machine counts chain across consecutive moves
    /// (`moves[i].to == moves[i+1].from`).
    MoveChaining,
    /// PLN-01: predicted load never exceeds capacity, including the
    /// *effective* capacity of Equation 7 while a move is in flight
    /// (Fig 4).
    PlanCapacity,
    /// PLN-02: a plan starts at the requested machine count at `t = 0`
    /// and spans exactly the prediction horizon (Algorithm 1).
    PlanStart,
    /// PLN-03: on small horizons the DP's cost equals a brute-force
    /// enumeration oracle over all feasible move sequences (Algorithm 2's
    /// optimal substructure).
    PlanOptimality,
    /// FOR-01: predictions are finite, non-NaN and non-negative (loads are
    /// rates; a negative or non-finite prediction would corrupt every
    /// downstream planner decision).
    ForecastFinite,
    /// FOR-02: SPAR reproduces a strictly periodic signal — predictions
    /// over future periods stay close to the periodic continuation (§5.1).
    ForecastPeriodicity,
    /// TEL-01: every `span_begin` in a telemetry trace has exactly one
    /// matching `span_end` (reconfigurations in particular always
    /// terminate).
    TelemetryReconfigPairing,
    /// TEL-02: span events nest LIFO — an end always closes the innermost
    /// open span, ids are unique among open spans, and no span dangles at
    /// end of trace.
    TelemetrySpanNesting,
    /// TEL-03: merging latency histograms is associative and
    /// order-insensitive on bucket contents, so per-phase histograms can
    /// be combined in any order without changing percentile readouts.
    TelemetryHistogramMerge,
    /// TEL-04: trace events are totally ordered — `seq` strictly
    /// increases and sim-time `t` never regresses while any span is open
    /// (a reset to an earlier `t` is only legal at the boundary between
    /// independent runs, where the span stack is empty).
    TelemetryOrdering,
    /// TEL-05: the span-tree profiler conserves time — a parent's total
    /// time is at least the sum of its children's totals (self time is
    /// never negative), and the flamegraph-folded output re-sums to the
    /// tree it was rendered from.
    TelemetryProfileConservation,
    /// TEL-06: per-transaction lifecycle events are well-formed — every
    /// `txn_arrive` is terminally resolved by exactly one `txn_commit` or
    /// `txn_abort` before end of trace, lifecycle events never reference
    /// a transaction id that is not currently open, and the terminal
    /// event's latency attribution sums (`queue + exec + stall == total`
    /// within tolerance).
    TelemetryTxnLifecycle,
    /// CON-01: the sweep pool's work queue executes every cell exactly
    /// once and reassembles results in cell order, at any thread count
    /// and under any interleaving (loom model: claim counter + take-once
    /// slots; runtime check: fault-injected sweeps lose no cell).
    ConcurrencyQueueIntegrity,
    /// CON-02: every cell's result (and captured telemetry) is fully
    /// visible to the merging thread before the ordered merge starts —
    /// the join barrier publishes all worker writes.
    ConcurrencyMergeBarrier,
    /// CON-03: a cell never observes telemetry-registry state from
    /// another cell, including the previous cell run back-to-back on the
    /// same reused worker thread.
    ConcurrencyRegistryIsolation,
    /// CON-04: the sharded engine's SPSC mailbox handoff is
    /// happens-before correct — a payload written before the `Release`
    /// tail publish is fully visible to the consumer's `Acquire` load,
    /// values arrive exactly once and in FIFO order, and a retired slot
    /// is never overwritten while still occupied (loom model: real
    /// `Mailbox` under exhaustive interleaving; runtime check:
    /// serial-vs-sharded fate equivalence).
    ConcurrencyMailboxHandoff,
    /// CON-05: the reconfiguration fence excludes in-flight shard
    /// execution — every shard has quiesced (acked the fence epoch)
    /// before a global structural operation runs, the shards' prior
    /// writes are visible to the coordinator at the ack, and no shard
    /// resumes until the coordinator releases the epoch (loom model:
    /// `FenceGate` + mailbox; runtime check: sharded runs match serial
    /// byte-for-byte through reconfigurations).
    ConcurrencyReconfigFence,
    /// TXN-01: a transaction's recorded read/write set is consistent with
    /// its declared partition access — destination-side accesses (and
    /// Squall-style restarts) only occur while the slot's partition is
    /// migrating, and the rwset record carries the slot the transaction
    /// arrived on (§4.2).
    TxnReadWriteSets,
    /// ISO-01: the direct serialization graph over sampled key-level
    /// version histories (WR edges from versions read, WW edges from
    /// version order, RW anti-dependencies from the version a read
    /// missed) is acyclic — the history is conflict-serializable
    /// (IsoPredict-style checking; §4.2, migrations are transparent to
    /// transaction semantics).
    IsoDsgAcyclic,
    /// ISO-02: every read observes a version installed by a transaction
    /// at or before the reader in the commit order — no read from the
    /// future, and the serialization order is equivalent to the commit
    /// order.
    IsoReadCommitOrder,
    /// ISO-03: Squall-style restarts leave no orphan versions — each
    /// (key, version) has exactly one installer, per-key versions are
    /// installed in strictly increasing order, and a restarted
    /// transaction's reads are consistent with its own writes
    /// (read-your-restart; §4.2).
    IsoRestartIntegrity,
    /// PRV-01: the provisioning capacity ledger conserves machine-time —
    /// machine-seconds provisioned equal the integral of per-interval
    /// active machines, `provisioned - ideal == over - under` holds over
    /// the `prov_interval` record (the Fig 9 area accounting), and every
    /// attributed reconfiguration's machine delta matches its decision's
    /// `machines -> target`.
    ProvLedgerConservation,
    /// PRV-02: decision causality — every `prov_reconfig` traces back to
    /// exactly one `prov_decision` (ids unique, no decision drives two
    /// moves, no move precedes its decision), and a predictive decision
    /// with lead `L` starts its migration at least `L - 1` intervals
    /// before the target interval it provisioned for.
    ProvDecisionCausality,
    /// PRV-03: forecast bookkeeping — every scored (model, horizon,
    /// target-interval) triple appears exactly once in the
    /// `prov_forecast` record, and each score's observation matches the
    /// demand the `prov_interval` record holds for that interval.
    ProvForecastBookkeeping,
}

impl InvariantId {
    /// The stable short code used in reports and `docs/invariants.md`.
    pub fn code(self) -> &'static str {
        match self {
            InvariantId::ScheduleRoundCount => "SCH-01",
            InvariantId::ScheduleRoundMatching => "SCH-02",
            InvariantId::SchedulePairCoverage => "SCH-03",
            InvariantId::SchedulePresence => "SCH-04",
            InvariantId::ScheduleRoleDirection => "SCH-05",
            InvariantId::ScheduleNoopEmpty => "SCH-06",
            InvariantId::ScheduleReversal => "SCH-07",
            InvariantId::ScheduleAvgMachines => "SCH-08",
            InvariantId::SchedulePeakParallelism => "SCH-09",
            InvariantId::MoveTiling => "MOV-01",
            InvariantId::MoveDuration => "MOV-02",
            InvariantId::MoveNoopUnit => "MOV-03",
            InvariantId::MoveChaining => "MOV-04",
            InvariantId::PlanCapacity => "PLN-01",
            InvariantId::PlanStart => "PLN-02",
            InvariantId::PlanOptimality => "PLN-03",
            InvariantId::ForecastFinite => "FOR-01",
            InvariantId::ForecastPeriodicity => "FOR-02",
            InvariantId::TelemetryReconfigPairing => "TEL-01",
            InvariantId::TelemetrySpanNesting => "TEL-02",
            InvariantId::TelemetryHistogramMerge => "TEL-03",
            InvariantId::TelemetryOrdering => "TEL-04",
            InvariantId::TelemetryProfileConservation => "TEL-05",
            InvariantId::TelemetryTxnLifecycle => "TEL-06",
            InvariantId::ConcurrencyQueueIntegrity => "CON-01",
            InvariantId::ConcurrencyMergeBarrier => "CON-02",
            InvariantId::ConcurrencyRegistryIsolation => "CON-03",
            InvariantId::ConcurrencyMailboxHandoff => "CON-04",
            InvariantId::ConcurrencyReconfigFence => "CON-05",
            InvariantId::TxnReadWriteSets => "TXN-01",
            InvariantId::IsoDsgAcyclic => "ISO-01",
            InvariantId::IsoReadCommitOrder => "ISO-02",
            InvariantId::IsoRestartIntegrity => "ISO-03",
            InvariantId::ProvLedgerConservation => "PRV-01",
            InvariantId::ProvDecisionCausality => "PRV-02",
            InvariantId::ProvForecastBookkeeping => "PRV-03",
        }
    }

    /// The paper section (or figure/table/algorithm) stating the
    /// invariant.
    pub fn paper_ref(self) -> &'static str {
        match self {
            InvariantId::ScheduleRoundCount => "§4.4.1, Table 1",
            InvariantId::ScheduleRoundMatching => "§4.4.1",
            InvariantId::SchedulePairCoverage => "§4.4.1 (1/(A·B) conservation)",
            InvariantId::SchedulePresence => "§4.4.1, Table 1 (JIT allocation)",
            InvariantId::ScheduleRoleDirection => "§4.4.1",
            InvariantId::ScheduleNoopEmpty => "§4.3",
            InvariantId::ScheduleReversal => "§4.4.2",
            InvariantId::ScheduleAvgMachines => "Algorithm 4",
            InvariantId::SchedulePeakParallelism => "Equation 2",
            InvariantId::MoveTiling => "Algorithm 2",
            InvariantId::MoveDuration => "Algorithm 2",
            InvariantId::MoveNoopUnit => "Algorithm 2, line 9",
            InvariantId::MoveChaining => "Algorithm 1",
            InvariantId::PlanCapacity => "Equation 7, Fig 4",
            InvariantId::PlanStart => "Algorithm 1",
            InvariantId::PlanOptimality => "Algorithms 1–3",
            InvariantId::ForecastFinite => "§5",
            InvariantId::ForecastPeriodicity => "§5.1",
            InvariantId::TelemetryReconfigPairing => "§4.4 (moves terminate)",
            InvariantId::TelemetrySpanNesting => "docs/observability.md",
            InvariantId::TelemetryHistogramMerge => "docs/observability.md",
            InvariantId::TelemetryOrdering => "docs/observability.md",
            InvariantId::TelemetryProfileConservation => "docs/observability.md",
            InvariantId::TelemetryTxnLifecycle => "docs/observability.md",
            InvariantId::ConcurrencyQueueIntegrity => "§8 (experiment grids)",
            InvariantId::ConcurrencyMergeBarrier => "§8 (determinism contract)",
            InvariantId::ConcurrencyRegistryIsolation => "docs/observability.md",
            InvariantId::ConcurrencyMailboxHandoff => "§6 (execution engine)",
            InvariantId::ConcurrencyReconfigFence => "§4.2 (Squall reconfiguration)",
            InvariantId::TxnReadWriteSets => "§4.2 (Squall reconfiguration)",
            InvariantId::IsoDsgAcyclic => "§4.2 (transparent migration; IsoPredict DSG)",
            InvariantId::IsoReadCommitOrder => "§4.2 (commit-order equivalence)",
            InvariantId::IsoRestartIntegrity => "§4.2 (Squall restart semantics)",
            InvariantId::ProvLedgerConservation => "Fig 9 (capacity over/under-provision areas)",
            InvariantId::ProvDecisionCausality => "§6 (decisions start D ahead of demand)",
            InvariantId::ProvForecastBookkeeping => "§5 (per-horizon forecast scoring)",
        }
    }
}

impl fmt::Display for InvariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One invariant violation: which artifact broke which invariant, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that failed.
    pub invariant: InvariantId,
    /// The artifact being checked, e.g. `schedule 3->14` or
    /// `plan horizon=20 n0=2`.
    pub artifact: String,
    /// Human-readable explanation of the failure.
    pub detail: String,
}

impl Violation {
    /// Builds a violation record.
    pub fn new(
        invariant: InvariantId,
        artifact: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Violation {
            invariant,
            artifact: artifact.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {}] {}: {}",
            self.invariant.code(),
            self.invariant.paper_ref(),
            self.artifact,
            self.detail
        )
    }
}

/// Formats violations one per line; `Ok` summary when the list is empty.
pub fn report(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "ok: no invariant violations".to_string();
    }
    let lines: Vec<String> = violations.iter().map(ToString::to_string).collect();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_section_and_artifact() {
        let v = Violation::new(
            InvariantId::ScheduleRoundCount,
            "schedule 3->14",
            "expected 11 rounds, found 12",
        );
        let s = v.to_string();
        assert!(s.contains("SCH-01"));
        assert!(s.contains("Table 1"));
        assert!(s.contains("schedule 3->14"));
        assert!(s.contains("12"));
    }

    #[test]
    fn concurrency_codes_follow_family_convention() {
        let family = [
            InvariantId::ConcurrencyQueueIntegrity,
            InvariantId::ConcurrencyMergeBarrier,
            InvariantId::ConcurrencyRegistryIsolation,
            InvariantId::ConcurrencyMailboxHandoff,
            InvariantId::ConcurrencyReconfigFence,
        ];
        for (i, id) in family.iter().enumerate() {
            assert_eq!(id.code(), format!("CON-{:02}", i + 1));
            assert!(!id.paper_ref().is_empty());
        }
        let v = Violation::new(
            InvariantId::ConcurrencyQueueIntegrity,
            "sweep threads=4",
            "cell 3 missing from results",
        );
        assert!(v.to_string().contains("CON-01"));
    }

    #[test]
    fn telemetry_codes_follow_family_convention() {
        let family = [
            InvariantId::TelemetryReconfigPairing,
            InvariantId::TelemetrySpanNesting,
            InvariantId::TelemetryHistogramMerge,
            InvariantId::TelemetryOrdering,
            InvariantId::TelemetryProfileConservation,
            InvariantId::TelemetryTxnLifecycle,
        ];
        for (i, id) in family.iter().enumerate() {
            assert_eq!(id.code(), format!("TEL-{:02}", i + 1));
            assert!(!id.paper_ref().is_empty());
        }
    }

    #[test]
    fn prov_codes_follow_family_convention() {
        let family = [
            InvariantId::ProvLedgerConservation,
            InvariantId::ProvDecisionCausality,
            InvariantId::ProvForecastBookkeeping,
        ];
        for (i, id) in family.iter().enumerate() {
            assert_eq!(id.code(), format!("PRV-{:02}", i + 1));
            assert!(!id.paper_ref().is_empty());
        }
        let v = Violation::new(
            InvariantId::ProvDecisionCausality,
            "prov reactive run shards=4",
            "reconfig id 3 has no matching decision",
        );
        assert!(v.to_string().contains("PRV-02"));
    }

    #[test]
    fn txn_family_has_code_and_paper_ref() {
        assert_eq!(InvariantId::TxnReadWriteSets.code(), "TXN-01");
        assert!(InvariantId::TxnReadWriteSets.paper_ref().contains("Squall"));
        let v = Violation::new(
            InvariantId::TxnReadWriteSets,
            "txn 42",
            "dest write outside migration",
        );
        assert!(v.to_string().contains("TXN-01"));
    }

    #[test]
    fn iso_codes_follow_family_convention() {
        let family = [
            InvariantId::IsoDsgAcyclic,
            InvariantId::IsoReadCommitOrder,
            InvariantId::IsoRestartIntegrity,
        ];
        for (i, id) in family.iter().enumerate() {
            assert_eq!(id.code(), format!("ISO-{:02}", i + 1));
            assert!(!id.paper_ref().is_empty());
        }
        let v = Violation::new(
            InvariantId::IsoDsgAcyclic,
            "history shards=4",
            "cycle T5 -WW(k)-> T7 -RW(k)-> T5",
        );
        assert!(v.to_string().contains("ISO-01"));
    }

    #[test]
    fn report_joins_lines() {
        assert!(report(&[]).starts_with("ok"));
        let vs = vec![
            Violation::new(InvariantId::MoveTiling, "seq", "gap at t=3"),
            Violation::new(InvariantId::MoveChaining, "seq", "2 then 4"),
        ];
        assert_eq!(report(&vs).lines().count(), 2);
    }
}
