//! The analytical model of data migrations (§4.4 of the paper):
//! parallelism (Eq 2), duration (Eq 3), cost (Eq 4, Algorithm 4), and
//! capacity / effective capacity (Eq 5, Eq 7).
//!
//! All functions are pure; `d` (time to move the whole database once with a
//! single thread pair) can be expressed in any time unit and results come
//! back in the same unit.
//!
//! ```
//! use pstore_core::cost_model::{move_time, avg_machines_allocated, eff_cap};
//! // The paper's Fig 4c example: scaling 3 -> 14 with one partition per
//! // machine takes 11/42 of D and averages 111/11 machines.
//! assert!((move_time(3, 14, 1, 1.0) - 11.0 / 42.0).abs() < 1e-12);
//! assert!((avg_machines_allocated(3, 14) - 111.0 / 11.0).abs() < 1e-12);
//! // Halfway through, effective capacity is well below 14 machines.
//! assert!(eff_cap(3, 14, 0.5, 1.0) < 5.0);
//! ```

/// Maximum number of parallel data transfers during a move from `b` to `a`
/// machines with `p` partitions per machine (Equation 2).
///
/// Each partition transfers with at most one peer at a time, so parallelism
/// is bounded by the smaller of the sender and receiver partition counts.
pub fn max_parallel_transfers(b: u32, a: u32, p: u32) -> u32 {
    assert!(b > 0 && a > 0, "machine counts must be positive");
    assert!(p > 0, "partitions per machine must be positive");
    if b == a {
        0
    } else if b < a {
        p * b.min(a - b)
    } else {
        p * a.min(b - a)
    }
}

/// Time `T(B, A)` for a move from `b` to `a` machines (Equation 3), in the
/// unit of `d`.
///
/// `d` is the single-thread whole-database migration time; the move streams
/// the fraction of the database that actually changes hands
/// (`1 - min/max`) at the maximum parallelism of Equation 2.
pub fn move_time(b: u32, a: u32, p: u32, d: f64) -> f64 {
    assert!(d >= 0.0, "d must be non-negative");
    if b == a {
        return 0.0;
    }
    let par = max_parallel_transfers(b, a, p) as f64;
    let fraction = if b < a {
        1.0 - b as f64 / a as f64
    } else {
        1.0 - a as f64 / b as f64
    };
    d / par * fraction
}

/// Average number of machines allocated during a move from `b` to `a`
/// machines (Algorithm 4).
///
/// Machine allocation is symmetric in scale-in and scale-out; only the
/// larger/smaller cluster sizes matter. The three cases correspond to the
/// three scheduling strategies of §4.4.1 (Fig 4).
pub fn avg_machines_allocated(b: u32, a: u32) -> f64 {
    assert!(b > 0 && a > 0, "machine counts must be positive");
    let l = b.max(a) as f64; // larger cluster
    let s = b.min(a) as f64; // smaller cluster
    let delta = l - s;
    if delta == 0.0 {
        return l;
    }
    // `delta` and `s` are whole numbers (from u32), so the remainder is exact.
    let r = delta % s;

    // Case 1: all machines added/removed at once.
    if s >= delta {
        return l;
    }
    // Case 2: delta is a multiple of the smaller cluster; blocks of s
    // machines allocated just in time.
    if r == 0.0 {
        return (2.0 * s + l) / 2.0;
    }
    // Case 3: three phases (see Table 1 / Fig 4c).
    let n1 = (delta / s).floor() - 1.0; // full blocks in phase 1
    let t1 = s / delta; // time per phase-1 step
    let m1 = (s + l - r) / 2.0; // avg machines across phase-1 steps
    let phase1 = n1 * t1 * m1;

    let t2 = r / delta; // phase 2: one block, filled r/s of the way
    let m2 = l - r;
    let phase2 = t2 * m2;

    let t3 = s / delta; // phase 3: final r machines added
    let m3 = l;
    let phase3 = t3 * m3;

    phase1 + phase2 + phase3
}

/// Cost `C(B, A)` of a move (Equation 4): elapsed time multiplied by the
/// average machines allocated, in machine-time units of `d`.
pub fn move_cost(b: u32, a: u32, p: u32, d: f64) -> f64 {
    move_time(b, a, p, d) * avg_machines_allocated(b, a)
}

/// Machines needed to serve `load` at per-machine throughput `q`
/// (Equation 5 solved for `n`, rounded up, at least one machine).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // ceil of a non-negative finite ratio
pub fn machines_for_load(load: f64, q: f64) -> u32 {
    assert!(q > 0.0, "Q must be positive");
    (load / q).ceil().max(1.0) as u32
}

/// Total capacity of `n` evenly loaded machines (Equation 5): `Q * n`.
pub fn cap(n: u32, q: f64) -> f64 {
    q * n as f64
}

/// Effective capacity of the system after a fraction `f` of the moving data
/// has been transferred during a reconfiguration from `b` to `a` machines
/// (Equation 7).
///
/// During a move the node holding the largest share of the database caps
/// system throughput: on scale-out the original `b` senders drain from
/// `1/B` towards `1/A` of the data each, so effective capacity climbs from
/// `cap(B)` to `cap(A)`; scale-in mirrors this.
///
/// # Panics
/// Panics unless `0 <= f <= 1`.
pub fn eff_cap(b: u32, a: u32, f: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
    assert!(b > 0 && a > 0, "machine counts must be positive");
    let (bf, af) = (b as f64, a as f64);
    let equivalent_machines = if b == a {
        bf
    } else if b < a {
        // Each of the B senders holds 1/B - f*(1/B - 1/A) of the data.
        1.0 / (1.0 / bf - f * (1.0 / bf - 1.0 / af))
    } else {
        // Each of the A receivers grows from 1/B towards 1/A.
        1.0 / (1.0 / bf + f * (1.0 / af - 1.0 / bf))
    };
    q * equivalent_machines
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;

    const Q: f64 = 285.0;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    // ---- Equation 2 ----

    #[test]
    fn parallelism_is_zero_without_change() {
        assert_eq!(max_parallel_transfers(3, 3, 6), 0);
    }

    #[test]
    fn parallelism_scale_out_cases() {
        // Fig 4a: 3 -> 5, P=1: min(3, 2) = 2.
        assert_eq!(max_parallel_transfers(3, 5, 1), 2);
        // Fig 4b: 3 -> 9, P=1: min(3, 6) = 3.
        assert_eq!(max_parallel_transfers(3, 9, 1), 3);
        // Fig 4c: 3 -> 14, P=1: min(3, 11) = 3.
        assert_eq!(max_parallel_transfers(3, 14, 1), 3);
        // Partitions multiply parallelism.
        assert_eq!(max_parallel_transfers(3, 14, 6), 18);
    }

    #[test]
    fn parallelism_scale_in_mirrors_scale_out() {
        for p in [1u32, 6] {
            for (b, a) in [(5, 3), (9, 3), (14, 3)] {
                assert_eq!(
                    max_parallel_transfers(b, a, p),
                    max_parallel_transfers(a, b, p)
                );
            }
        }
    }

    // ---- Equation 3 ----

    #[test]
    fn move_time_zero_for_noop() {
        assert_eq!(move_time(4, 4, 6, 100.0), 0.0);
    }

    #[test]
    fn move_time_scale_out_formula() {
        // 3 -> 9, P = 1: D/3 * (1 - 3/9) = D * 2/9.
        assert!(close(move_time(3, 9, 1, 1.0), 2.0 / 9.0));
        // 3 -> 14, P = 1: D/3 * (1 - 3/14) = D * 11/42.
        assert!(close(move_time(3, 14, 1, 1.0), 11.0 / 42.0));
    }

    #[test]
    fn move_time_scale_in_is_symmetric() {
        assert!(close(move_time(9, 3, 1, 1.0), move_time(3, 9, 1, 1.0)));
        assert!(close(move_time(14, 3, 1, 1.0), move_time(3, 14, 1, 1.0)));
    }

    #[test]
    fn move_time_shrinks_with_more_partitions() {
        let slow = move_time(3, 9, 1, 1.0);
        let fast = move_time(3, 9, 6, 1.0);
        assert!(close(fast, slow / 6.0));
    }

    #[test]
    fn doubling_cluster_size_moves_half_the_data() {
        // 5 -> 10: fraction moved = 1/2, parallelism = 5P.
        assert!(close(move_time(5, 10, 1, 1.0), 0.5 / 5.0));
    }

    // ---- Algorithm 4 ----

    #[test]
    fn avg_alloc_noop_is_cluster_size() {
        assert_eq!(avg_machines_allocated(4, 4), 4.0);
    }

    #[test]
    fn avg_alloc_case1_all_at_once() {
        // 3 -> 5: delta = 2 <= s = 3, all allocated at once -> 5.
        assert_eq!(avg_machines_allocated(3, 5), 5.0);
        // 10 -> 15: delta = 5 <= 10 -> 15.
        assert_eq!(avg_machines_allocated(10, 15), 15.0);
    }

    #[test]
    fn avg_alloc_case2_perfect_multiple() {
        // 3 -> 9: delta = 6 = 2*3, avg = (2*3 + 9)/2 = 7.5.
        assert_eq!(avg_machines_allocated(3, 9), 7.5);
        // 2 -> 8: delta = 6 = 3*2, avg = (4 + 8)/2 = 6.
        assert_eq!(avg_machines_allocated(2, 8), 6.0);
    }

    #[test]
    fn avg_alloc_case3_three_phases() {
        // 3 -> 14 (Table 1): s=3, l=14, delta=11, r=2.
        // phase1: N1 = floor(11/3)-1 = 2 steps, T1 = 3/11, M1 = (3+14-2)/2 = 7.5
        //         -> 2 * 3/11 * 7.5 = 45/11
        // phase2: T2 = 2/11, M2 = 12 -> 24/11
        // phase3: T3 = 3/11, M3 = 14 -> 42/11
        // total = 111/11 ≈ 10.0909
        assert!(close(avg_machines_allocated(3, 14), 111.0 / 11.0));
    }

    #[test]
    fn avg_alloc_symmetric_in_scale_direction() {
        for (x, y) in [(3u32, 5u32), (3, 9), (3, 14), (2, 7), (4, 10)] {
            assert!(close(
                avg_machines_allocated(x, y),
                avg_machines_allocated(y, x)
            ));
        }
    }

    #[test]
    fn avg_alloc_bounded_by_cluster_sizes() {
        for b in 1..=12u32 {
            for a in 1..=12u32 {
                let avg = avg_machines_allocated(b, a);
                assert!(avg >= b.min(a) as f64 - 1e-9);
                assert!(avg <= b.max(a) as f64 + 1e-9);
            }
        }
    }

    // ---- Equation 4 ----

    #[test]
    fn move_cost_is_time_times_alloc() {
        let t = move_time(3, 9, 1, 1.0);
        assert!(close(move_cost(3, 9, 1, 1.0), t * 7.5));
        assert_eq!(move_cost(4, 4, 1, 1.0), 0.0);
    }

    // ---- Equation 5 ----

    #[test]
    fn cap_is_linear() {
        assert_eq!(cap(4, Q), 4.0 * Q);
        assert_eq!(cap(1, Q), Q);
    }

    // ---- Equation 7 ----

    #[test]
    fn eff_cap_noop_is_full_capacity() {
        assert_eq!(eff_cap(4, 4, 0.5, Q), cap(4, Q));
    }

    #[test]
    fn eff_cap_boundaries_match_cap() {
        // Start of scale-out: capacity of B machines; end: capacity of A.
        assert!(close(eff_cap(3, 14, 0.0, Q), cap(3, Q)));
        assert!(close(eff_cap(3, 14, 1.0, Q), cap(14, Q)));
        assert!(close(eff_cap(14, 3, 0.0, Q), cap(14, Q)));
        assert!(close(eff_cap(14, 3, 1.0, Q), cap(3, Q)));
    }

    #[test]
    fn eff_cap_monotone_during_scale_out() {
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let c = eff_cap(3, 14, f, Q);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn eff_cap_monotone_decreasing_during_scale_in() {
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let c = eff_cap(14, 3, f, Q);
            assert!(c <= prev);
            prev = c;
        }
    }

    #[test]
    fn eff_cap_midpoint_scale_out_formula() {
        // B=3, A=9, f=0.5: sender fraction = 1/3 - 0.5*(1/3 - 1/9) = 2/9,
        // equivalent machines = 4.5.
        assert!(close(eff_cap(3, 9, 0.5, Q), 4.5 * Q));
    }

    #[test]
    fn eff_cap_lags_machine_allocation() {
        // Mid-way through 3 -> 14, effective capacity is far below the
        // 14-machine capacity (the planning pitfall Fig 4c illustrates).
        let mid = eff_cap(3, 14, 0.5, Q);
        assert!(mid < 0.5 * cap(14, Q));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn eff_cap_rejects_bad_fraction() {
        let _ = eff_cap(3, 5, 1.5, Q);
    }
}
