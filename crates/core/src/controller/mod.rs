//! Provisioning controllers (§6 and the baselines of §8).
//!
//! A controller is stepped once per monitoring interval with an
//! [`Observation`] of the running system and may request a reconfiguration.
//! The P-Store controller (predict → plan → execute first move) lives in
//! [`pstore`]; the E-Store-style reactive baseline in [`reactive`]; static,
//! time-of-day ("Simple") and oracle variants in [`baselines`].

pub mod baselines;
pub mod forecaster;
pub mod manual;
pub mod provenance;
pub mod pstore;
pub mod reactive;

pub use baselines::{GreedyLookahead, SimpleController, StaticController};
pub use forecaster::{LoadForecaster, OracleForecaster, SparForecaster};
pub use manual::{ManualOverride, Reservation};
pub use provenance::ProvScorer;
pub use pstore::{PStoreConfig, PStoreController};
pub use reactive::{ReactiveConfig, ReactiveController};

use serde::{Deserialize, Serialize};

/// A snapshot of the running system handed to a controller each monitoring
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Monotonically increasing monitoring-interval index.
    pub interval: usize,
    /// Load measured over the last interval (same units as `Q`, e.g. txn/s).
    pub load: f64,
    /// Machines currently allocated.
    pub machines: u32,
    /// Whether a reconfiguration is currently in progress.
    pub reconfiguring: bool,
}

/// Why a reconfiguration was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigReason {
    /// Scheduled by the predictive planner ahead of a load change.
    Planned,
    /// Fallback reaction to an unpredicted spike (no feasible plan;
    /// §4.3.1's options (1)/(2)).
    Emergency,
    /// Issued by a reactive or schedule-based baseline policy.
    Policy,
}

/// A reconfiguration request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigRequest {
    /// Desired cluster size after the move.
    pub target: u32,
    /// Multiplier on the non-disruptive migration rate `R`; `1.0` preserves
    /// latency, larger values trade latency for speed (Fig 11's `R x 8`).
    pub rate_multiplier: f64,
    /// Why the move was requested.
    pub reason: ReconfigReason,
    /// Id of the `prov_decision` event that issued this request
    /// (0 = unattributed, e.g. baseline policies or provenance off).
    pub decision_id: u64,
}

/// A controller's decision for one monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Keep the current configuration.
    None,
    /// Start a reconfiguration.
    Reconfigure(ReconfigRequest),
}

impl Action {
    /// The request, if this action reconfigures.
    pub fn request(&self) -> Option<&ReconfigRequest> {
        match self {
            Action::None => None,
            Action::Reconfigure(r) => Some(r),
        }
    }
}

/// A provisioning policy: maps observations to actions.
pub trait Strategy: Send {
    /// Steps the controller by one monitoring interval.
    fn tick(&mut self, obs: &Observation) -> Action;

    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &str;

    /// The cluster size this policy wants at start-up.
    fn initial_machines(&self) -> u32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_request_accessor() {
        assert!(Action::None.request().is_none());
        let req = ReconfigRequest {
            target: 5,
            rate_multiplier: 1.0,
            reason: ReconfigReason::Planned,
            decision_id: 0,
        };
        assert_eq!(Action::Reconfigure(req).request(), Some(&req));
    }
}
