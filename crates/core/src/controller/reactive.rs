//! E-Store-style reactive provisioning (§2, §8.2's "Reactive" baseline).
//!
//! The reactive controller knows nothing about the future: it watches the
//! measured load and triggers a reconfiguration only once the system is
//! already near (or past) its maximum throughput — which is precisely why
//! reactive systems reconfigure at peak capacity and suffer latency spikes
//! at the start of every load rise (Fig 9c). Scale-ins are taken only after
//! the load has stayed low for a patience window, mirroring E-Store's
//! conservative down-scaling.

use super::provenance::{ProvScorer, SCORED_HORIZONS};
use super::{Action, Observation, ReconfigReason, ReconfigRequest, Strategy};
use crate::cost_model::machines_for_load;
use std::collections::VecDeque;

/// Tuning knobs of the reactive baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactiveConfig {
    /// Target per-machine throughput `Q` used to size the new cluster.
    pub q: f64,
    /// Maximum per-machine throughput `Q̂`; the scale-out trigger fires at
    /// `trigger_fraction * Q̂ * machines`.
    pub q_hat: f64,
    /// Fraction of `Q̂ * machines` at which scale-out triggers (close to 1:
    /// the system reacts only when performance already degrades).
    pub trigger_fraction: f64,
    /// Extra headroom when sizing the new cluster: target machines =
    /// `ceil(load * (1 + headroom) / Q)`.
    pub headroom: f64,
    /// Monitoring intervals of smoothing applied to the measured load.
    pub smoothing_window: usize,
    /// Consecutive low-load intervals required before scaling in.
    pub scale_in_patience: usize,
    /// Hardware cap on cluster size.
    pub max_machines: u32,
    /// Initial cluster size.
    pub initial_machines: u32,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            q: 285.0,
            q_hat: 350.0,
            trigger_fraction: 0.95,
            headroom: 0.10,
            smoothing_window: 3,
            scale_in_patience: 6,
            max_machines: 10,
            initial_machines: 2,
        }
    }
}

/// The reactive controller.
pub struct ReactiveController {
    cfg: ReactiveConfig,
    recent: VecDeque<f64>,
    low_streak: usize,
    prov: ProvScorer,
}

impl ReactiveController {
    /// Creates a reactive controller.
    ///
    /// # Panics
    /// Panics on inconsistent configuration.
    pub fn new(cfg: ReactiveConfig) -> Self {
        assert!(cfg.q > 0.0 && cfg.q_hat >= cfg.q, "invalid Q/Q̂");
        assert!(
            cfg.trigger_fraction > 0.0 && cfg.trigger_fraction <= 1.0,
            "trigger fraction must be in (0, 1]"
        );
        assert!(cfg.smoothing_window >= 1, "smoothing window must be >= 1");
        assert!(cfg.initial_machines >= 1, "need at least one machine");
        ReactiveController {
            cfg,
            recent: VecDeque::new(),
            low_streak: 0,
            prov: ProvScorer::new(),
        }
    }

    fn smoothed(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().sum::<f64>() / self.recent.len() as f64
    }

    fn sized_target(&self, load: f64) -> u32 {
        machines_for_load(load * (1.0 + self.cfg.headroom), self.cfg.q)
            .clamp(1, self.cfg.max_machines)
    }
}

impl Strategy for ReactiveController {
    fn tick(&mut self, obs: &Observation) -> Action {
        self.prov.score("persistence", obs);
        self.recent.push_back(obs.load);
        while self.recent.len() > self.cfg.smoothing_window {
            self.recent.pop_front();
        }
        if obs.reconfiguring {
            // Can't start another move; keep watching.
            self.low_streak = 0;
            return Action::None;
        }
        let load = self.smoothed();
        // A reactive policy's implicit forecast is persistence: "demand
        // stays where it is". Scoring it makes the predictive-vs-reactive
        // forecast-accuracy gap measurable from the same trace.
        let persistence = vec![load; SCORED_HORIZONS[SCORED_HORIZONS.len() - 1]];
        self.prov.predict(obs.interval, &persistence);

        // Scale out: the system is already pushing against its maximum
        // throughput.
        let high_mark = self.cfg.trigger_fraction * self.cfg.q_hat * obs.machines as f64;
        if load > high_mark {
            self.low_streak = 0;
            let target = self.sized_target(load).max(obs.machines);
            if target > obs.machines {
                pstore_telemetry::tel_event!(
                    pstore_telemetry::kinds::SCALE_DECISION,
                    "interval" => obs.interval,
                    "machines" => obs.machines,
                    "target" => target,
                    "rate" => 1.0,
                    "reason" => "reactive-out",
                );
                let decision_id =
                    self.prov
                        .decision(obs, target, "reactive-out", high_mark, load, 0.0, 0, 1.0);
                return Action::Reconfigure(ReconfigRequest {
                    target,
                    rate_multiplier: 1.0,
                    reason: ReconfigReason::Policy,
                    decision_id,
                });
            }
            return Action::None;
        }

        // Scale in: sustained low load such that a smaller cluster would
        // still have comfortable headroom.
        let shrunk = self.sized_target(load);
        if shrunk < obs.machines {
            self.low_streak += 1;
            if self.low_streak >= self.cfg.scale_in_patience {
                self.low_streak = 0;
                pstore_telemetry::tel_event!(
                    pstore_telemetry::kinds::SCALE_DECISION,
                    "interval" => obs.interval,
                    "machines" => obs.machines,
                    "target" => shrunk,
                    "rate" => 1.0,
                    "reason" => "reactive-in",
                );
                let decision_id =
                    self.prov
                        .decision(obs, shrunk, "reactive-in", high_mark, load, 0.0, 0, 1.0);
                return Action::Reconfigure(ReconfigRequest {
                    target: shrunk,
                    rate_multiplier: 1.0,
                    reason: ReconfigReason::Policy,
                    decision_id,
                });
            }
        } else {
            self.low_streak = 0;
        }
        Action::None
    }

    fn name(&self) -> &str {
        "Reactive"
    }

    fn initial_machines(&self) -> u32 {
        self.cfg.initial_machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReactiveConfig {
        ReactiveConfig {
            q: 100.0,
            q_hat: 120.0,
            trigger_fraction: 0.9,
            headroom: 0.10,
            smoothing_window: 1,
            scale_in_patience: 3,
            max_machines: 10,
            initial_machines: 2,
        }
    }

    fn obs(load: f64, machines: u32) -> Observation {
        Observation {
            interval: 0,
            load,
            machines,
            reconfiguring: false,
        }
    }

    #[test]
    fn no_action_at_moderate_load() {
        let mut c = ReactiveController::new(cfg());
        assert_eq!(c.tick(&obs(150.0, 2)), Action::None);
    }

    #[test]
    fn scales_out_only_past_the_high_mark() {
        let mut c = ReactiveController::new(cfg());
        // High mark at 2 machines: 0.9 * 120 * 2 = 216.
        assert_eq!(c.tick(&obs(210.0, 2)), Action::None);
        let Action::Reconfigure(r) = c.tick(&obs(230.0, 2)) else {
            panic!("expected scale-out");
        };
        // Target: ceil(230 * 1.1 / 100) = 3.
        assert_eq!(r.target, 3);
        assert_eq!(r.reason, ReconfigReason::Policy);
    }

    #[test]
    fn scale_in_needs_patience() {
        let mut c = ReactiveController::new(cfg());
        assert_eq!(c.tick(&obs(80.0, 4)), Action::None);
        assert_eq!(c.tick(&obs(80.0, 4)), Action::None);
        let Action::Reconfigure(r) = c.tick(&obs(80.0, 4)) else {
            panic!("expected scale-in after patience window");
        };
        assert_eq!(r.target, 1); // ceil(88/100) = 1
    }

    #[test]
    fn load_blip_resets_scale_in_patience() {
        let mut c = ReactiveController::new(cfg());
        assert_eq!(c.tick(&obs(80.0, 4)), Action::None);
        assert_eq!(c.tick(&obs(390.0, 4)), Action::None); // resets streak
        assert_eq!(c.tick(&obs(80.0, 4)), Action::None);
        assert_eq!(c.tick(&obs(80.0, 4)), Action::None);
        // Third consecutive low tick fires.
        assert!(matches!(c.tick(&obs(80.0, 4)), Action::Reconfigure(_)));
    }

    #[test]
    fn target_clamped_to_hardware() {
        let mut c = ReactiveController::new(cfg());
        let Action::Reconfigure(r) = c.tick(&obs(5_000.0, 2)) else {
            panic!("expected scale-out");
        };
        assert_eq!(r.target, 10);
    }

    #[test]
    fn holds_while_reconfiguring() {
        let mut c = ReactiveController::new(cfg());
        let a = c.tick(&Observation {
            interval: 0,
            load: 500.0,
            machines: 2,
            reconfiguring: true,
        });
        assert_eq!(a, Action::None);
    }

    #[test]
    fn smoothing_damps_single_tick_spikes() {
        let mut c = ReactiveController::new(ReactiveConfig {
            smoothing_window: 4,
            ..cfg()
        });
        c.tick(&obs(100.0, 2));
        c.tick(&obs(100.0, 2));
        c.tick(&obs(100.0, 2));
        // One 400 tick smooths to 175 < 216 high mark: no action.
        assert_eq!(c.tick(&obs(400.0, 2)), Action::None);
    }
}
