//! Static and time-of-day ("Simple") allocation baselines (§8.3, Fig 12/13),
//! plus a greedy-lookahead ablation of the dynamic program.

use super::forecaster::LoadForecaster;
use super::{Action, Observation, ReconfigReason, ReconfigRequest, Strategy};
use crate::cost_model::machines_for_load;

/// Fixed allocation: never reconfigures (Fig 9a/9b).
#[derive(Debug, Clone)]
pub struct StaticController {
    machines: u32,
}

impl StaticController {
    /// Creates a static policy holding `machines` machines forever.
    ///
    /// # Panics
    /// Panics if `machines == 0`.
    pub fn new(machines: u32) -> Self {
        assert!(machines >= 1, "need at least one machine");
        StaticController { machines }
    }
}

impl Strategy for StaticController {
    fn tick(&mut self, _obs: &Observation) -> Action {
        Action::None
    }

    fn name(&self) -> &str {
        "Static"
    }

    fn initial_machines(&self) -> u32 {
        self.machines
    }
}

/// The "Simple" strategy of Fig 12/13: more machines in the morning, fewer
/// at night, on a fixed daily schedule. Works until the load deviates from
/// the pattern (Fig 13, right).
#[derive(Debug, Clone)]
pub struct SimpleController {
    /// Monitoring intervals per day.
    pub intervals_per_day: usize,
    /// Interval of day at which the day shift begins.
    pub day_start: usize,
    /// Interval of day at which the night shift begins.
    pub night_start: usize,
    /// Machines during the day shift.
    pub day_machines: u32,
    /// Machines during the night shift.
    pub night_machines: u32,
}

impl SimpleController {
    /// Creates a time-of-day policy.
    ///
    /// # Panics
    /// Panics on inconsistent schedule boundaries or zero machine counts.
    pub fn new(
        intervals_per_day: usize,
        day_start: usize,
        night_start: usize,
        day_machines: u32,
        night_machines: u32,
    ) -> Self {
        assert!(intervals_per_day > 0, "day length must be positive");
        assert!(
            day_start < night_start && night_start <= intervals_per_day,
            "expected day_start < night_start <= intervals_per_day"
        );
        assert!(day_machines >= 1 && night_machines >= 1, "need machines");
        SimpleController {
            intervals_per_day,
            day_start,
            night_start,
            day_machines,
            night_machines,
        }
    }

    /// Desired machines at the given interval-of-day.
    pub fn desired_at(&self, interval_of_day: usize) -> u32 {
        if (self.day_start..self.night_start).contains(&interval_of_day) {
            self.day_machines
        } else {
            self.night_machines
        }
    }
}

impl Strategy for SimpleController {
    fn tick(&mut self, obs: &Observation) -> Action {
        if obs.reconfiguring {
            return Action::None;
        }
        let desired = self.desired_at(obs.interval % self.intervals_per_day);
        if desired != obs.machines {
            Action::Reconfigure(ReconfigRequest {
                target: desired,
                rate_multiplier: 1.0,
                reason: ReconfigReason::Policy,
                decision_id: 0,
            })
        } else {
            Action::None
        }
    }

    fn name(&self) -> &str {
        "Simple"
    }

    fn initial_machines(&self) -> u32 {
        self.night_machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(interval: usize, machines: u32) -> Observation {
        Observation {
            interval,
            load: 100.0,
            machines,
            reconfiguring: false,
        }
    }

    #[test]
    fn static_never_acts() {
        let mut c = StaticController::new(10);
        assert_eq!(c.initial_machines(), 10);
        for t in 0..100 {
            assert_eq!(c.tick(&obs(t, 10)), Action::None);
        }
    }

    #[test]
    fn simple_follows_schedule() {
        // 24-interval day: day shift [8, 20) with 8 machines, else 3.
        let mut c = SimpleController::new(24, 8, 20, 8, 3);
        assert_eq!(c.initial_machines(), 3);
        // Night: already at 3 machines, no action.
        assert_eq!(c.tick(&obs(2, 3)), Action::None);
        // Morning boundary: scale out to 8.
        let Action::Reconfigure(r) = c.tick(&obs(8, 3)) else {
            panic!("expected morning scale-out");
        };
        assert_eq!(r.target, 8);
        // During the day at 8 machines: hold.
        assert_eq!(c.tick(&obs(14, 8)), Action::None);
        // Evening boundary: scale in to 3.
        let Action::Reconfigure(r) = c.tick(&obs(20, 8)) else {
            panic!("expected evening scale-in");
        };
        assert_eq!(r.target, 3);
        // The schedule repeats daily.
        let Action::Reconfigure(r) = c.tick(&obs(24 + 8, 3)) else {
            panic!("expected next-day scale-out");
        };
        assert_eq!(r.target, 8);
    }

    #[test]
    fn simple_waits_for_running_moves() {
        let mut c = SimpleController::new(24, 8, 20, 8, 3);
        let a = c.tick(&Observation {
            interval: 8,
            load: 100.0,
            machines: 3,
            reconfiguring: true,
        });
        assert_eq!(a, Action::None);
    }

    #[test]
    #[should_panic(expected = "day_start < night_start")]
    fn simple_rejects_bad_schedule() {
        let _ = SimpleController::new(24, 20, 8, 8, 3);
    }
}

/// Greedy lookahead: an ablation of the §4.3 dynamic program. It uses the
/// same forecasts but no planning — every tick it sizes the cluster for
/// the *maximum* predicted load over the horizon and reconfigures towards
/// it immediately. This guarantees capacity (it always provisions for the
/// upcoming peak) but cannot delay scale-outs or schedule staged moves, so
/// it holds peak-sized clusters for much longer than the DP (the
/// `ablations` binary quantifies the cost gap).
pub struct GreedyLookahead<F: LoadForecaster> {
    forecaster: F,
    /// Horizon in ticks.
    pub horizon: usize,
    /// Target per-machine throughput `Q`.
    pub q: f64,
    /// Prediction inflation factor.
    pub inflation: f64,
    /// Hardware cap.
    pub max_machines: u32,
    /// Initial cluster size.
    pub initial_machines: u32,
    label: String,
}

impl<F: LoadForecaster> GreedyLookahead<F> {
    /// Creates a greedy-lookahead controller.
    pub fn new(
        forecaster: F,
        horizon: usize,
        q: f64,
        inflation: f64,
        max_machines: u32,
        initial_machines: u32,
    ) -> Self {
        assert!(horizon >= 1, "horizon must be at least one tick");
        assert!(q > 0.0, "Q must be positive");
        let label = format!("Greedy ({})", forecaster.name());
        GreedyLookahead {
            forecaster,
            horizon,
            q,
            inflation,
            max_machines,
            initial_machines,
            label,
        }
    }
}

impl<F: LoadForecaster> Strategy for GreedyLookahead<F> {
    fn tick(&mut self, obs: &Observation) -> Action {
        self.forecaster.observe(obs.load);
        if obs.reconfiguring {
            return Action::None;
        }
        let Some(pred) = self.forecaster.forecast(self.horizon) else {
            return Action::None;
        };
        let peak = pred.iter().copied().fold(obs.load, f64::max) * self.inflation;
        let target = machines_for_load(peak, self.q).clamp(1, self.max_machines);
        if target != obs.machines {
            return Action::Reconfigure(ReconfigRequest {
                target,
                rate_multiplier: 1.0,
                reason: ReconfigReason::Policy,
                decision_id: 0,
            });
        }
        Action::None
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn initial_machines(&self) -> u32 {
        self.initial_machines
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;
    use crate::controller::forecaster::OracleForecaster;

    fn obs(interval: usize, load: f64, machines: u32) -> Observation {
        Observation {
            interval,
            load,
            machines,
            reconfiguring: false,
        }
    }

    #[test]
    fn greedy_provisions_for_the_horizon_peak_immediately() {
        // Peak of 950 arrives at tick 8, far in the future — greedy scales
        // to 10 machines right away (Q = 100).
        let mut trace = vec![150.0; 20];
        trace[8] = 950.0;
        let mut g = GreedyLookahead::new(OracleForecaster::new(trace), 10, 100.0, 1.0, 12, 2);
        let Action::Reconfigure(r) = g.tick(&obs(0, 150.0, 2)) else {
            panic!("greedy should scale immediately");
        };
        assert_eq!(r.target, 10);
    }

    #[test]
    fn greedy_scales_in_once_the_peak_leaves_the_horizon() {
        let mut trace = vec![150.0; 30];
        trace[2] = 950.0;
        let mut g = GreedyLookahead::new(OracleForecaster::new(trace), 5, 100.0, 1.0, 12, 10);
        // Tick past the peak; once it's out of the horizon greedy shrinks.
        let mut shrank = false;
        for t in 0..10 {
            if let Action::Reconfigure(r) = g.tick(&obs(t, 150.0, 10)) {
                if r.target < 10 {
                    shrank = true;
                    break;
                }
            }
        }
        assert!(shrank, "greedy never scaled back in");
    }

    #[test]
    fn greedy_holds_while_reconfiguring() {
        let mut g =
            GreedyLookahead::new(OracleForecaster::new(vec![900.0; 10]), 5, 100.0, 1.0, 12, 2);
        let a = g.tick(&Observation {
            interval: 0,
            load: 900.0,
            machines: 2,
            reconfiguring: true,
        });
        assert_eq!(a, Action::None);
    }
}
