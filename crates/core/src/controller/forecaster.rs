//! Horizon forecast sources for the predictive controller.
//!
//! The P-Store controller is generic over where its load predictions come
//! from: a live SPAR model refit online ([`SparForecaster`], the paper's
//! default), or the true future of a recorded trace ([`OracleForecaster`],
//! the "P-Store Oracle" upper bound of Fig 12).

use pstore_forecast::model::LoadPredictor;
use pstore_forecast::online::OnlinePredictor;
use pstore_forecast::spar::{SparConfig, SparModel};

/// A source of load forecasts fed by the measured load stream.
pub trait LoadForecaster: Send {
    /// Records the load measured over the latest monitoring interval.
    fn observe(&mut self, load: f64);

    /// Forecasts the next `horizon` intervals, or `None` if not yet ready
    /// (e.g. the model is still accumulating training data).
    fn forecast(&mut self, horizon: usize) -> Option<Vec<f64>>;

    /// Source name for experiment output.
    fn name(&self) -> &str;
}

/// SPAR-backed forecaster with online refitting (§6's Predictor component).
pub struct SparForecaster {
    inner: OnlinePredictor,
}

impl SparForecaster {
    /// Creates a SPAR forecaster that refits every `refit_every`
    /// observations over a sliding window of `max_history` samples.
    pub fn new(config: SparConfig, refit_every: usize, max_history: usize) -> Self {
        let min_train = config.min_history() + config.taus.iter().copied().max().unwrap_or(1) + 1;
        let fit_cfg = config.clone();
        let inner = OnlinePredictor::new(
            Box::new(move |data: &[f64]| {
                SparModel::fit(data, &fit_cfg).map(|m| Box::new(m) as Box<dyn LoadPredictor>)
            }),
            min_train,
            refit_every,
            max_history.max(min_train),
        );
        SparForecaster { inner }
    }

    /// Seeds the forecaster with historical training data (offline
    /// training, as in the paper's 4-week warm-up).
    pub fn seed(&mut self, history: &[f64]) {
        self.inner.seed(history);
    }

    /// Whether a model has been fitted.
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }
}

impl LoadForecaster for SparForecaster {
    fn observe(&mut self, load: f64) {
        self.inner.observe(load);
    }

    fn forecast(&mut self, horizon: usize) -> Option<Vec<f64>> {
        self.inner.forecast(horizon)
    }

    fn name(&self) -> &str {
        "SPAR"
    }
}

/// Perfect-prediction forecaster that replays the true future of a trace.
///
/// Each `observe` call advances the cursor by one interval, so forecasts
/// stay aligned with the measured stream. Beyond the end of the trace the
/// last value is repeated.
pub struct OracleForecaster {
    trace: Vec<f64>,
    cursor: usize,
}

impl OracleForecaster {
    /// Creates an oracle over the full load trace; the cursor starts at
    /// interval 0 (the first `observe` corresponds to `trace[0]`).
    pub fn new(trace: Vec<f64>) -> Self {
        assert!(!trace.is_empty(), "trace must be non-empty");
        OracleForecaster { trace, cursor: 0 }
    }

    /// Current position in the trace.
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

impl LoadForecaster for OracleForecaster {
    fn observe(&mut self, _load: f64) {
        self.cursor += 1;
    }

    fn forecast(&mut self, horizon: usize) -> Option<Vec<f64>> {
        // The constructor asserts the trace is non-empty.
        let last = self.trace[self.trace.len() - 1];
        Some(
            (0..horizon)
                .map(|i| self.trace.get(self.cursor + i).copied().unwrap_or(last))
                .collect(),
        )
    }

    fn name(&self) -> &str {
        "Oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_returns_true_future() {
        let mut o = OracleForecaster::new(vec![1.0, 2.0, 3.0, 4.0]);
        o.observe(1.0); // cursor -> 1: next values are trace[1..]
        assert_eq!(o.forecast(2), Some(vec![2.0, 3.0]));
        o.observe(2.0);
        assert_eq!(o.forecast(3), Some(vec![3.0, 4.0, 4.0])); // pads at end
    }

    #[test]
    fn spar_forecaster_becomes_ready_after_seed() {
        let cfg = SparConfig {
            period: 24,
            n_periods: 2,
            m_recent: 4,
            taus: vec![1, 2],
            ridge_lambda: 1e-6,
            max_rows: 1_000,
        };
        let mut f = SparForecaster::new(cfg, 1_000, 10_000);
        assert!(!f.is_ready());
        let data: Vec<f64> = (0..24 * 8)
            .map(|i| 100.0 + 30.0 * (2.0 * std::f64::consts::PI * (i % 24) as f64 / 24.0).sin())
            .collect();
        f.seed(&data);
        assert!(f.is_ready());
        let fc = f.forecast(6).unwrap();
        assert_eq!(fc.len(), 6);
        // Periodic signal: forecast close to the same phase a day earlier.
        for (i, v) in fc.iter().enumerate() {
            let expect = data[data.len() - 24 + i];
            assert!(
                (v - expect).abs() / expect < 0.05,
                "slot {i}: {v} vs {expect}"
            );
        }
    }
}
