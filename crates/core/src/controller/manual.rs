//! Manual provisioning overrides (§1's composite strategy).
//!
//! The paper envisions elastic provisioning as three complementary
//! techniques: *predictive* (this system), *reactive* (the emergency
//! fallback), and *manual* — operators pre-provisioning for rare but
//! *known* events such as planned promotions, where no statistical model
//! can see the spike coming but a human can. [`ManualOverride`] wraps any
//! [`Strategy`] with an operator calendar of minimum-capacity windows: the
//! inner policy runs as usual, but during a window the cluster is floored
//! at the reserved size (scale-ins below it are clipped, and a scale-out
//! is issued ahead of the window so capacity is ready when it opens).

//!
//! ```
//! use pstore_core::controller::manual::{ManualOverride, Reservation};
//! use pstore_core::controller::baselines::StaticController;
//! use pstore_core::controller::Strategy;
//!
//! let promo = Reservation {
//!     start_interval: 100, end_interval: 150,
//!     min_machines: 9, lead_intervals: 5,
//! };
//! let composite = ManualOverride::new(StaticController::new(3), vec![promo]);
//! assert_eq!(composite.active_floor(120), Some(9));
//! assert_eq!(composite.active_floor(0), None);
//! ```

use super::{Action, Observation, ReconfigReason, ReconfigRequest, Strategy};

/// One operator reservation: hold at least `min_machines` during
/// `[start_interval, end_interval)`, and begin scaling out `lead_intervals`
/// before it opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// First monitoring interval of the window (inclusive).
    pub start_interval: usize,
    /// End of the window (exclusive).
    pub end_interval: usize,
    /// Minimum machines during the window.
    pub min_machines: u32,
    /// Intervals of lead time to get the capacity in place (cover the
    /// migration duration).
    pub lead_intervals: usize,
}

impl Reservation {
    fn is_armed(&self, interval: usize) -> bool {
        interval + self.lead_intervals >= self.start_interval && interval < self.end_interval
    }
}

/// A strategy wrapper enforcing operator reservations.
pub struct ManualOverride<S: Strategy> {
    inner: S,
    reservations: Vec<Reservation>,
    label: String,
}

impl<S: Strategy> ManualOverride<S> {
    /// Wraps `inner` with a reservation calendar.
    ///
    /// # Panics
    /// Panics on malformed reservations (empty windows or zero machines).
    pub fn new(inner: S, reservations: Vec<Reservation>) -> Self {
        for r in &reservations {
            assert!(
                r.start_interval < r.end_interval,
                "reservation window must be non-empty"
            );
            assert!(
                r.min_machines >= 1,
                "reservation needs at least one machine"
            );
        }
        let label = format!("{} + manual", inner.name());
        ManualOverride {
            inner,
            reservations,
            label,
        }
    }

    /// The floor in force (or being armed) at `interval`, if any.
    pub fn active_floor(&self, interval: usize) -> Option<u32> {
        self.reservations
            .iter()
            .filter(|r| r.is_armed(interval))
            .map(|r| r.min_machines)
            .max()
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Strategy> Strategy for ManualOverride<S> {
    fn tick(&mut self, obs: &Observation) -> Action {
        let inner_action = self.inner.tick(obs);
        let Some(floor) = self.active_floor(obs.interval) else {
            return inner_action;
        };
        match inner_action {
            // Clip any move that would dip below the floor.
            Action::Reconfigure(req) if req.target < floor => {
                if obs.machines >= floor || obs.reconfiguring {
                    Action::None
                } else {
                    Action::Reconfigure(ReconfigRequest {
                        target: floor,
                        rate_multiplier: req.rate_multiplier,
                        reason: ReconfigReason::Policy,
                        decision_id: 0,
                    })
                }
            }
            Action::Reconfigure(req) => Action::Reconfigure(req),
            Action::None => {
                // Inner is content; make sure the reservation is met.
                if obs.machines < floor && !obs.reconfiguring {
                    Action::Reconfigure(ReconfigRequest {
                        target: floor,
                        rate_multiplier: 1.0,
                        reason: ReconfigReason::Policy,
                        decision_id: 0,
                    })
                } else {
                    Action::None
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn initial_machines(&self) -> u32 {
        let at_start = self.active_floor(0).unwrap_or(1);
        self.inner.initial_machines().max(at_start)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;
    use crate::controller::baselines::StaticController;

    fn obs(interval: usize, machines: u32, reconfiguring: bool) -> Observation {
        Observation {
            interval,
            load: 100.0,
            machines,
            reconfiguring,
        }
    }

    fn promo() -> Reservation {
        Reservation {
            start_interval: 10,
            end_interval: 20,
            min_machines: 8,
            lead_intervals: 3,
        }
    }

    #[test]
    fn floor_is_enforced_with_lead_time() {
        let mut c = ManualOverride::new(StaticController::new(2), vec![promo()]);
        // Before the lead window: inner (static) does nothing, no floor.
        assert_eq!(c.tick(&obs(5, 2, false)), Action::None);
        // Lead window opens at interval 7 (= 10 - 3): scale to 8.
        let Action::Reconfigure(r) = c.tick(&obs(7, 2, false)) else {
            panic!("expected a reservation scale-out");
        };
        assert_eq!(r.target, 8);
        assert_eq!(r.reason, ReconfigReason::Policy);
        // During the window at 8 machines: nothing more to do.
        assert_eq!(c.tick(&obs(12, 8, false)), Action::None);
        // After the window: floor lifted.
        assert_eq!(c.tick(&obs(25, 8, false)), Action::None);
    }

    #[test]
    fn scale_in_below_floor_is_clipped() {
        // An inner policy that always wants to shrink to 2.
        struct Shrinker;
        impl Strategy for Shrinker {
            fn tick(&mut self, _obs: &Observation) -> Action {
                Action::Reconfigure(ReconfigRequest {
                    target: 2,
                    rate_multiplier: 1.0,
                    reason: ReconfigReason::Policy,
                    decision_id: 0,
                })
            }
            fn name(&self) -> &str {
                "shrinker"
            }
            fn initial_machines(&self) -> u32 {
                8
            }
        }
        let mut c = ManualOverride::new(Shrinker, vec![promo()]);
        // During the window, the shrink to 2 is clipped (hold at 8).
        assert_eq!(c.tick(&obs(12, 8, false)), Action::None);
        // If somehow below the floor, the clip raises back to it.
        let Action::Reconfigure(r) = c.tick(&obs(12, 5, false)) else {
            panic!("expected raise to floor");
        };
        assert_eq!(r.target, 8);
        // Outside the window the shrink passes through.
        let Action::Reconfigure(r) = c.tick(&obs(30, 8, false)) else {
            panic!("expected pass-through");
        };
        assert_eq!(r.target, 2);
    }

    #[test]
    fn scale_outs_pass_through_unchanged() {
        struct Grower;
        impl Strategy for Grower {
            fn tick(&mut self, _obs: &Observation) -> Action {
                Action::Reconfigure(ReconfigRequest {
                    target: 10,
                    rate_multiplier: 8.0,
                    reason: ReconfigReason::Emergency,
                    decision_id: 0,
                })
            }
            fn name(&self) -> &str {
                "grower"
            }
            fn initial_machines(&self) -> u32 {
                2
            }
        }
        let mut c = ManualOverride::new(Grower, vec![promo()]);
        let Action::Reconfigure(r) = c.tick(&obs(12, 5, false)) else {
            panic!("expected pass-through");
        };
        assert_eq!(r.target, 10);
        assert_eq!(r.rate_multiplier, 8.0);
    }

    #[test]
    fn overlapping_reservations_take_the_max_floor() {
        let mut reservations = vec![promo()];
        reservations.push(Reservation {
            start_interval: 15,
            end_interval: 30,
            min_machines: 6,
            lead_intervals: 0,
        });
        let c = ManualOverride::new(StaticController::new(2), reservations);
        assert_eq!(c.active_floor(16), Some(8)); // both active -> max
        assert_eq!(c.active_floor(25), Some(6)); // only the second
        assert_eq!(c.active_floor(40), None);
    }

    #[test]
    fn initial_machines_respect_a_floor_at_start() {
        let c = ManualOverride::new(
            StaticController::new(2),
            vec![Reservation {
                start_interval: 0,
                end_interval: 5,
                min_machines: 7,
                lead_intervals: 0,
            }],
        );
        assert_eq!(c.initial_machines(), 7);
    }

    #[test]
    fn waits_while_reconfiguring() {
        let mut c = ManualOverride::new(StaticController::new(2), vec![promo()]);
        assert_eq!(c.tick(&obs(12, 2, true)), Action::None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_windows() {
        let _ = ManualOverride::new(
            StaticController::new(2),
            vec![Reservation {
                start_interval: 5,
                end_interval: 5,
                min_machines: 2,
                lead_intervals: 0,
            }],
        );
    }
}
