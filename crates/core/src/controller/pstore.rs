//! The P-Store Predictive Controller (§6).
//!
//! Each monitoring cycle: feed the Predictor the measured load, obtain a
//! horizon of predictions, run the Planner (the §4.3 dynamic program), and
//! execute only the *first* move of the returned plan — receding-horizon
//! control: by the time that move completes the predictions will have
//! changed and the plan is recomputed. Scale-in moves require three
//! consecutive confirming cycles (§6); when no feasible plan exists the
//! controller falls back to an emergency scale-out at either the regular or
//! an accelerated migration rate (§4.3.1).

use super::forecaster::LoadForecaster;
use super::provenance::ProvScorer;
use super::{Action, Observation, ReconfigReason, ReconfigRequest, Strategy};
use crate::planner::Planner;

/// Tuning knobs of the predictive controller.
#[derive(Debug, Clone, PartialEq)]
pub struct PStoreConfig {
    /// Planning horizon in intervals. Must cover at least two maximal
    /// reconfigurations (`2 * D / P`, §5's forecasting-window discussion)
    /// so a planned scale-in can be undone in time.
    pub horizon: usize,
    /// Multiplier applied to predictions to absorb model error (the paper
    /// inflates by 15%, i.e. `1.15`).
    pub prediction_inflation: f64,
    /// Consecutive cycles a scale-in must be re-proposed before executing.
    pub scale_in_confirmations: u32,
    /// Migration-rate multiplier for emergency scale-outs; `1.0` is the
    /// paper's default option (2) — keep the non-disruptive rate and accept
    /// a longer wait — while e.g. `8.0` is option (1).
    pub emergency_rate_multiplier: f64,
    /// Initial cluster size.
    pub initial_machines: u32,
}

impl Default for PStoreConfig {
    fn default() -> Self {
        PStoreConfig {
            horizon: 24, // 2 hours of 5-minute intervals
            prediction_inflation: 1.15,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: 2,
        }
    }
}

/// The predictive controller, generic over the forecast source (live SPAR
/// or a trace oracle).
pub struct PStoreController<F: LoadForecaster> {
    planner: Planner,
    cfg: PStoreConfig,
    forecaster: F,
    scale_in_streak: u32,
    stats: ControllerStats,
    label: String,
    prov: ProvScorer,
}

/// Counters describing what the controller did (for experiment reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Planned (predictive) reconfigurations issued.
    pub planned_moves: u64,
    /// Emergency (reactive fallback) reconfigurations issued.
    pub emergency_moves: u64,
    /// Scale-in proposals suppressed by the confirmation heuristic.
    pub suppressed_scale_ins: u64,
    /// Cycles skipped because a reconfiguration was in progress.
    pub busy_cycles: u64,
    /// Cycles with no forecast available yet.
    pub cold_cycles: u64,
}

impl<F: LoadForecaster> PStoreController<F> {
    /// Creates a controller around a planner and a forecast source.
    pub fn new(planner: Planner, forecaster: F, cfg: PStoreConfig) -> Self {
        assert!(
            cfg.horizon >= 2,
            "horizon must cover at least two intervals"
        );
        assert!(cfg.prediction_inflation > 0.0, "inflation must be positive");
        assert!(cfg.initial_machines >= 1, "need at least one machine");
        let label = format!("P-Store ({})", forecaster.name());
        PStoreController {
            planner,
            cfg,
            forecaster,
            scale_in_streak: 0,
            stats: ControllerStats::default(),
            label,
            prov: ProvScorer::new(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The forecast source.
    pub fn forecaster_mut(&mut self) -> &mut F {
        &mut self.forecaster
    }

    fn emergency(&mut self, load_curve: &[f64], obs: &Observation) -> Action {
        // No feasible plan: scale straight to the machines needed for the
        // predicted peak (bounded by hardware) at the configured rate.
        let peak = load_curve.iter().copied().fold(0.0, f64::max);
        let target = self
            .planner
            .machines_needed(peak)
            .clamp(1, self.planner.config().max_machines);
        if target <= obs.machines {
            // Already at (or beyond) the best we can do; ride it out.
            return Action::None;
        }
        self.stats.emergency_moves += 1;
        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::SCALE_DECISION,
            "interval" => obs.interval,
            "machines" => obs.machines,
            "target" => target,
            "rate" => self.cfg.emergency_rate_multiplier,
            "reason" => "emergency",
        );
        let decision_id = self.prov.decision(
            obs,
            target,
            "emergency",
            obs.load,
            peak,
            0.0,
            0,
            self.cfg.emergency_rate_multiplier,
        );
        Action::Reconfigure(ReconfigRequest {
            target,
            rate_multiplier: self.cfg.emergency_rate_multiplier,
            reason: ReconfigReason::Emergency,
            decision_id,
        })
    }
}

impl<F: LoadForecaster> Strategy for PStoreController<F> {
    fn tick(&mut self, obs: &Observation) -> Action {
        self.forecaster.observe(obs.load);
        self.prov.score(self.forecaster.name(), obs);
        if obs.reconfiguring {
            self.stats.busy_cycles += 1;
            return Action::None;
        }
        let Some(predictions) = self.forecaster.forecast(self.cfg.horizon) else {
            self.stats.cold_cycles += 1;
            return Action::None;
        };
        // Score the *raw* predictions later; inflation is a planning knob,
        // not part of the model's accuracy.
        self.prov.predict(obs.interval, &predictions);

        // Build the planning curve: measured load now, inflated predictions
        // after (§8.2: predictions inflated by 15% to absorb model error).
        let mut curve = Vec::with_capacity(predictions.len() + 1);
        curve.push(obs.load);
        curve.extend(
            predictions
                .iter()
                .map(|p| (p * self.cfg.prediction_inflation).max(0.0)),
        );

        let Some(plan) = self.planner.best_moves(&curve, obs.machines) else {
            self.scale_in_streak = 0;
            return self.emergency(&curve, obs);
        };

        let Some(first) = plan.first_reconfiguration() else {
            self.scale_in_streak = 0;
            return Action::None;
        };
        if first.start > 0 {
            // The move is planned for later; re-plan closer to its start.
            self.scale_in_streak = 0;
            return Action::None;
        }

        if first.is_scale_in() {
            // Confirm scale-ins across consecutive cycles to avoid churning
            // on noisy predictions (§6).
            self.scale_in_streak += 1;
            if self.scale_in_streak < self.cfg.scale_in_confirmations {
                self.stats.suppressed_scale_ins += 1;
                pstore_telemetry::tel_event!(
                    pstore_telemetry::kinds::SCALE_DECISION,
                    "interval" => obs.interval,
                    "machines" => obs.machines,
                    "target" => first.to,
                    "rate" => 1.0,
                    "reason" => "scale-in-suppressed",
                );
                return Action::None;
            }
            self.scale_in_streak = 0;
            self.stats.planned_moves += 1;
            pstore_telemetry::tel_event!(
                pstore_telemetry::kinds::SCALE_DECISION,
                "interval" => obs.interval,
                "machines" => obs.machines,
                "target" => first.to,
                "rate" => 1.0,
                "reason" => "planned",
            );
            let peak = curve.iter().copied().fold(0.0, f64::max);
            let decision_id = self.prov.decision(
                obs,
                first.to,
                "planned",
                obs.load,
                peak,
                plan.nominal_cost(),
                0,
                1.0,
            );
            return Action::Reconfigure(ReconfigRequest {
                target: first.to,
                rate_multiplier: 1.0,
                reason: ReconfigReason::Planned,
                decision_id,
            });
        }

        self.scale_in_streak = 0;
        self.stats.planned_moves += 1;
        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::SCALE_DECISION,
            "interval" => obs.interval,
            "machines" => obs.machines,
            "target" => first.to,
            "rate" => 1.0,
            "reason" => "planned",
        );
        // Lead: how many intervals ahead the demand rise that forces this
        // scale-out sits on the planning curve (0 = it is already here).
        let peak = curve.iter().copied().fold(0.0, f64::max);
        let lead = curve
            .iter()
            .position(|&l| self.planner.machines_needed(l) > obs.machines)
            .unwrap_or(0);
        let decision_id = self.prov.decision(
            obs,
            first.to,
            "planned",
            obs.load,
            peak,
            plan.nominal_cost(),
            lead,
            1.0,
        );
        Action::Reconfigure(ReconfigRequest {
            target: first.to,
            rate_multiplier: 1.0,
            reason: ReconfigReason::Planned,
            decision_id,
        })
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn initial_machines(&self) -> u32 {
        self.cfg.initial_machines
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;
    use crate::controller::forecaster::OracleForecaster;
    use crate::planner::{Planner, PlannerConfig};

    fn planner() -> Planner {
        Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: 6.0,
            partitions_per_node: 1,
            max_machines: 10,
        })
    }

    fn controller(trace: Vec<f64>, cfg: PStoreConfig) -> PStoreController<OracleForecaster> {
        PStoreController::new(planner(), OracleForecaster::new(trace), cfg)
    }

    fn obs(interval: usize, load: f64, machines: u32) -> Observation {
        Observation {
            interval,
            load,
            machines,
            reconfiguring: false,
        }
    }

    fn cfg_no_inflation() -> PStoreConfig {
        PStoreConfig {
            horizon: 12,
            prediction_inflation: 1.0,
            scale_in_confirmations: 3,
            emergency_rate_multiplier: 1.0,
            initial_machines: 2,
        }
    }

    #[test]
    fn flat_load_takes_no_action() {
        let trace = vec![150.0; 40];
        let mut c = controller(trace.clone(), cfg_no_inflation());
        for (t, &load) in trace.iter().enumerate().take(10) {
            assert_eq!(c.tick(&obs(t, load, 2)), Action::None);
        }
        assert_eq!(c.stats().planned_moves, 0);
    }

    #[test]
    fn scales_out_ahead_of_predicted_rise() {
        // Rise at t = 10 to 450 (needs 5 machines); move 2 -> 5 takes
        // ceil(6/2 * (1 - 2/5)) = 2 intervals, so the planner can wait.
        let mut trace = vec![150.0; 30];
        for v in &mut trace[10..] {
            *v = 450.0;
        }
        let mut c = controller(trace.clone(), cfg_no_inflation());
        let mut started_at = None;
        for (t, &load) in trace.iter().enumerate().take(10) {
            if let Action::Reconfigure(r) = c.tick(&obs(t, load, 2)) {
                assert_eq!(r.reason, ReconfigReason::Planned);
                assert!(r.target >= 5);
                started_at = Some(t);
                break;
            }
        }
        let started = started_at.expect("controller never scaled out");
        // Early enough to finish before t=10, late enough to not waste
        // machines (the planner delays as long as possible).
        assert!(started < 10, "started at {started}");
        assert!(started >= 2, "started suspiciously early at {started}");
    }

    #[test]
    fn scale_in_requires_three_confirmations() {
        let trace = vec![120.0; 60];
        let mut c = controller(trace, cfg_no_inflation());
        // Overprovisioned at 6 machines; trough needs 2.
        let mut actions = Vec::new();
        for t in 0..3 {
            actions.push(c.tick(&obs(t, 120.0, 6)));
        }
        assert_eq!(actions[0], Action::None);
        assert_eq!(actions[1], Action::None);
        let Action::Reconfigure(r) = actions[2] else {
            panic!("third confirmation should trigger scale-in: {actions:?}");
        };
        assert!(r.target < 6);
        assert_eq!(c.stats().suppressed_scale_ins, 2);
    }

    #[test]
    fn scale_in_streak_resets_when_load_returns() {
        let mut trace = vec![120.0; 40];
        // Load recovers at t = 2; with the rise inside the horizon the
        // planner stops proposing the scale-in.
        for v in &mut trace[2..] {
            *v = 550.0;
        }
        let mut c = controller(trace.clone(), cfg_no_inflation());
        let a0 = c.tick(&obs(0, 120.0, 6));
        assert_eq!(a0, Action::None); // scale-in proposed, suppressed
        let a1 = c.tick(&obs(1, 120.0, 6));
        // Second cycle: rise now visible; either hold or scale out, but
        // never scale in.
        if let Action::Reconfigure(r) = a1 {
            assert!(r.target >= 6);
        }
        let a2 = c.tick(&obs(2, 550.0, 6));
        if let Action::Reconfigure(r) = a2 {
            assert!(r.target >= 6);
        }
    }

    #[test]
    fn unpredicted_spike_triggers_emergency() {
        // The oracle predicts a spike to 2000 txn/s immediately: needs 20
        // machines but only 10 exist; and there is no time to migrate.
        let mut trace = vec![150.0; 30];
        for v in &mut trace[1..] {
            *v = 2000.0;
        }
        let mut c = controller(trace, cfg_no_inflation());
        let a = c.tick(&obs(0, 150.0, 2));
        let Action::Reconfigure(r) = a else {
            panic!("expected emergency reconfiguration");
        };
        assert_eq!(r.reason, ReconfigReason::Emergency);
        assert_eq!(r.target, 10); // hardware cap
        assert_eq!(c.stats().emergency_moves, 1);
    }

    #[test]
    fn emergency_respects_rate_multiplier() {
        let mut trace = vec![150.0; 30];
        for v in &mut trace[1..] {
            *v = 2000.0;
        }
        let cfg = PStoreConfig {
            emergency_rate_multiplier: 8.0,
            ..cfg_no_inflation()
        };
        let mut c = controller(trace, cfg);
        let Action::Reconfigure(r) = c.tick(&obs(0, 150.0, 2)) else {
            panic!("expected emergency reconfiguration");
        };
        assert_eq!(r.rate_multiplier, 8.0);
    }

    #[test]
    fn no_action_while_reconfiguring() {
        let mut trace = vec![150.0; 30];
        for v in &mut trace[5..] {
            *v = 900.0;
        }
        let mut c = controller(trace, cfg_no_inflation());
        let a = c.tick(&Observation {
            interval: 0,
            load: 150.0,
            machines: 2,
            reconfiguring: true,
        });
        assert_eq!(a, Action::None);
        assert_eq!(c.stats().busy_cycles, 1);
    }

    #[test]
    fn inflation_adds_headroom() {
        // Load of 260 with 15% inflation plans for 299 -> needs 3 machines
        // even though the raw load fits in 3... at Q=100, 260 needs 3
        // machines raw; inflated 299 still 3. Use 175: raw needs 2,
        // inflated 201.25 needs 3.
        let trace = vec![175.0; 40];
        let cfg = PStoreConfig {
            prediction_inflation: 1.15,
            ..cfg_no_inflation()
        };
        let mut c = controller(trace, cfg);
        // At 2 machines (cap 200): inflated predictions (201.25) exceed
        // capacity, so the controller must scale to 3.
        let mut saw_scale_out = false;
        for t in 0..5 {
            if let Action::Reconfigure(r) = c.tick(&obs(t, 175.0, 2)) {
                assert_eq!(r.target, 3);
                saw_scale_out = true;
                break;
            }
        }
        assert!(saw_scale_out, "inflation should force a third machine");
    }
}
