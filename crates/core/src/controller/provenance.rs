//! Decision and forecast provenance bookkeeping shared by the
//! controllers.
//!
//! [`ProvScorer`] is the controller-side half of the provisioning
//! observatory: it holds predictions until the observation for their
//! target interval arrives (emitting one `prov_forecast` per scored
//! (horizon, interval) pair — the PRV-03 bookkeeping contract) and
//! stamps every reconfiguration decision with a per-controller id
//! (emitting `prov_decision`, the PRV-02 causality anchor). The
//! bookkeeping itself is pure and always runs — it is deterministic and
//! bounded by [`SCORED_HORIZONS`] — while the events are only emitted
//! when the calling crate's `telemetry` feature is on *and*
//! `pstore_telemetry::prov_enabled()` holds, so default-config traces
//! stay byte-identical.

use super::Observation;

/// Horizons (in monitoring intervals) at which controllers record their
/// predictions for later scoring.
pub const SCORED_HORIZONS: [usize; 4] = [1, 2, 4, 8];

/// Pending-forecast store plus the decision-id counter.
#[derive(Debug, Default)]
pub struct ProvScorer {
    /// `(target interval, horizon, predicted)` awaiting an observation.
    pending: Vec<(usize, usize, f64)>,
    /// Last decision id handed out (ids are 1-based; 0 = unattributed).
    next_decision: u64,
}

impl ProvScorer {
    /// Creates an empty scorer.
    pub fn new() -> Self {
        ProvScorer::default()
    }

    /// Scores every pending prediction targeting `obs.interval` against
    /// the measured load, then drops entries at or before it (intervals
    /// skipped while the cluster was busy are never scored twice).
    pub fn score(&mut self, model: &str, obs: &Observation) {
        let _ = model;
        #[cfg(feature = "telemetry")]
        {
            if pstore_telemetry::prov_enabled() {
                for &(_, horizon, predicted) in
                    self.pending.iter().filter(|&&(t, _, _)| t == obs.interval)
                {
                    pstore_telemetry::emit(
                        pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_FORECAST)
                            .with("interval", obs.interval)
                            .with("horizon", horizon)
                            .with("model", model)
                            .with("predicted", predicted)
                            .with("observed", obs.load),
                    );
                }
            }
        }
        self.pending.retain(|&(t, _, _)| t > obs.interval);
    }

    /// Records raw (uninflated) predictions made at `interval`:
    /// `predictions[h - 1]` targets `interval + h` for each horizon in
    /// [`SCORED_HORIZONS`] the slice covers.
    pub fn predict(&mut self, interval: usize, predictions: &[f64]) {
        for &h in &SCORED_HORIZONS {
            if let Some(&p) = predictions.get(h - 1) {
                self.pending.push((interval + h, h, p));
            }
        }
    }

    /// Registers a decision, emits its `prov_decision` event (when
    /// provenance events are on), and returns the id for the outgoing
    /// [`ReconfigRequest`](super::ReconfigRequest). Ids are assigned
    /// unconditionally so request attribution does not depend on the
    /// telemetry gate. `lead` is in monitoring intervals: how far ahead
    /// the demand change driving the decision sits (0 for reactive and
    /// emergency decisions).
    #[allow(clippy::too_many_arguments)] // one argument per event column
    pub fn decision(
        &mut self,
        obs: &Observation,
        target: u32,
        reason: &str,
        trigger: f64,
        peak: f64,
        cost: f64,
        lead: usize,
        rate: f64,
    ) -> u64 {
        self.next_decision += 1;
        let _ = (obs, target, reason, trigger, peak, cost, lead, rate);
        #[cfg(feature = "telemetry")]
        {
            if pstore_telemetry::prov_enabled() {
                pstore_telemetry::emit(
                    pstore_telemetry::Event::new(pstore_telemetry::kinds::PROV_DECISION)
                        .with("id", self.next_decision)
                        .with("interval", obs.interval)
                        .with("machines", obs.machines)
                        .with("target", target)
                        .with("reason", reason)
                        .with("trigger", trigger)
                        .with("peak", peak)
                        .with("cost", cost)
                        .with("lead", lead)
                        .with("rate", rate),
                );
            }
        }
        self.next_decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(interval: usize, load: f64) -> Observation {
        Observation {
            interval,
            load,
            machines: 2,
            reconfiguring: false,
        }
    }

    #[test]
    fn pending_predictions_are_scored_once_and_dropped() {
        let mut s = ProvScorer::new();
        s.predict(0, &[110.0; 8]);
        assert_eq!(s.pending.len(), SCORED_HORIZONS.len());
        s.score("m", &obs(1, 100.0));
        // The horizon-1 entry targeting interval 1 is gone; later targets
        // remain.
        assert_eq!(s.pending.len(), SCORED_HORIZONS.len() - 1);
        // Skipping past every target drains the store.
        s.score("m", &obs(100, 100.0));
        assert!(s.pending.is_empty());
    }

    #[test]
    fn short_prediction_slices_only_cover_available_horizons() {
        let mut s = ProvScorer::new();
        s.predict(5, &[1.0, 2.0]);
        assert_eq!(s.pending, vec![(6, 1, 1.0), (7, 2, 2.0)]);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn decision_ids_are_sequential_and_emitted_only_when_gated() {
        let o = obs(0, 100.0);
        let mut s = ProvScorer::new();
        // Ids are handed out even with provenance off...
        assert_eq!(s.decision(&o, 3, "planned", 100.0, 200.0, 0.0, 2, 1.0), 1);

        let (sink, handle) = pstore_telemetry::MemorySink::new();
        let _guard = pstore_telemetry::install(std::rc::Rc::new(sink));
        let was = pstore_telemetry::set_prov_enabled(true);
        let a = s.decision(&o, 3, "planned", 100.0, 200.0, 0.0, 2, 1.0);
        let b = s.decision(&o, 4, "emergency", 400.0, 400.0, 0.0, 0, 8.0);
        pstore_telemetry::set_prov_enabled(was);
        assert_eq!((a, b), (2, 3));
        // ...but only the gated ones hit the sink.
        let events = handle.of_kind(pstore_telemetry::kinds::PROV_DECISION);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field_u64("id"), Some(2));
        assert_eq!(events[0].field_u64("lead"), Some(2));
        assert_eq!(events[1].field_str("reason"), Some("emergency"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn scoring_emits_one_forecast_per_pending_triple() {
        let (sink, handle) = pstore_telemetry::MemorySink::new();
        let _guard = pstore_telemetry::install(std::rc::Rc::new(sink));
        let was = pstore_telemetry::set_prov_enabled(true);
        let mut s = ProvScorer::new();
        s.predict(0, &[110.0, 120.0]);
        s.score("m", &obs(1, 100.0));
        s.score("m", &obs(2, 130.0));
        pstore_telemetry::set_prov_enabled(was);
        let events = handle.of_kind(pstore_telemetry::kinds::PROV_FORECAST);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field_u64("interval"), Some(1));
        assert_eq!(events[0].field_f64("predicted"), Some(110.0));
        assert_eq!(events[0].field_f64("observed"), Some(100.0));
        assert_eq!(events[1].field_u64("horizon"), Some(2));
    }
}
