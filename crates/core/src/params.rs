//! System parameters discovered offline (§4.1 / §8.1 of the paper).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Empirically discovered parameters of the database/workload pair.
///
/// The paper's parameter-discovery procedure (§8.1) yields, for the B2W
/// workload on H-Store with 6 partitions per node:
///
/// * saturation at 438 txn/s per node,
/// * `Q̂ = 350` txn/s (80% of saturation),
/// * `Q = 285` txn/s (65% of saturation),
/// * `D = 4646 s` — time to migrate the whole database once with a single
///   sender/receiver thread pair without impacting latency (incl. 10%
///   buffer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Target throughput per node `Q` (load units per second). Planning
    /// keeps predicted load under `Q * nodes`.
    pub q: f64,
    /// Maximum throughput per node `Q̂` (load units per second). Load above
    /// this risks violating the latency SLA.
    pub q_hat: f64,
    /// Time `D` to migrate the entire database exactly once with a single
    /// sender-receiver thread pair at the non-disruptive rate.
    pub d: Duration,
    /// Number of data partitions per node `P`.
    pub partitions_per_node: u32,
    /// Length of one planning interval (the DP time step; the paper's
    /// simulations use 5-minute predictions).
    pub interval: Duration,
    /// Hard upper bound on cluster size (available hardware).
    pub max_machines: u32,
}

impl SystemParams {
    /// The paper's discovered B2W/H-Store parameters (§8.1), with a 5-minute
    /// planning interval and a 10-node cluster.
    pub fn b2w_paper() -> Self {
        SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(4646),
            partitions_per_node: 6,
            interval: Duration::from_secs(300),
            max_machines: 10,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics when any invariant is violated; call once at construction
    /// boundaries (e.g. controller/simulator setup).
    pub fn validate(&self) {
        assert!(self.q > 0.0, "Q must be positive");
        assert!(self.q_hat >= self.q, "Q̂ must be at least Q");
        assert!(!self.d.is_zero(), "D must be positive");
        assert!(self.partitions_per_node > 0, "P must be positive");
        assert!(!self.interval.is_zero(), "interval must be positive");
        assert!(self.max_machines > 0, "max_machines must be positive");
    }

    /// `D` expressed in planning intervals (fractional).
    pub fn d_intervals(&self) -> f64 {
        self.d.as_secs_f64() / self.interval.as_secs_f64()
    }

    /// Derives `Q` and `Q̂` from a measured single-node saturation
    /// throughput using the paper's 65% / 80% rule (§4.1).
    pub fn from_saturation(
        saturation: f64,
        d: Duration,
        partitions_per_node: u32,
        interval: Duration,
        max_machines: u32,
    ) -> Self {
        assert!(saturation > 0.0, "saturation must be positive");
        SystemParams {
            q: 0.65 * saturation,
            q_hat: 0.80 * saturation,
            d,
            partitions_per_node,
            interval,
            max_machines,
        }
    }

    /// Returns a copy with a different target throughput `Q` (the knob swept
    /// in Fig 12 to trade cost against capacity headroom).
    pub fn with_q(&self, q: f64) -> Self {
        SystemParams { q, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact rational arithmetic
    use super::*;

    #[test]
    fn paper_parameters_are_consistent() {
        let p = SystemParams::b2w_paper();
        p.validate();
        assert_eq!(p.q, 285.0);
        assert_eq!(p.q_hat, 350.0);
        assert_eq!(p.d.as_secs(), 4646);
    }

    #[test]
    fn from_saturation_applies_paper_percentages() {
        let p = SystemParams::from_saturation(
            438.0,
            Duration::from_secs(4646),
            6,
            Duration::from_secs(300),
            10,
        );
        assert!((p.q - 284.7).abs() < 0.01);
        assert!((p.q_hat - 350.4).abs() < 0.01);
    }

    #[test]
    fn d_intervals_converts_units() {
        let p = SystemParams::b2w_paper();
        assert!((p.d_intervals() - 4646.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn with_q_overrides_only_q() {
        let p = SystemParams::b2w_paper().with_q(200.0);
        assert_eq!(p.q, 200.0);
        assert_eq!(p.q_hat, 350.0);
    }

    #[test]
    #[should_panic(expected = "Q̂ must be at least Q")]
    fn validate_rejects_q_above_q_hat() {
        let mut p = SystemParams::b2w_paper();
        p.q = 400.0;
        p.validate();
    }
}
