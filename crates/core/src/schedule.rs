//! Round-by-round migration schedules (§4.4.1, Table 1, Fig 4).
//!
//! A move from `B` to `A` machines transfers an equal amount of data between
//! every (sender, receiver) machine pair — `1/(A*B)` of the database per
//! pair — so that data stays evenly spread. Each machine participates in at
//! most one transfer at a time, so a schedule is a sequence of *rounds*,
//! each a matching between senders and receivers. P-Store's schedules
//! achieve the minimum possible number of rounds (`max(s, Δ)` where `s` is
//! the smaller cluster and `Δ` the number of machines added or removed)
//! while allocating new machines as late as possible:
//!
//! * **Case 1** (`Δ <= s`): all new machines at once, senders rotate.
//! * **Case 2** (`Δ = k*s`): `k` blocks of `s` machines, allocated
//!   just-in-time, each filled by `s` perfect-matching rounds.
//! * **Case 3** (otherwise): three phases — `k-1` full blocks, one block
//!   filled only `r/s` of the way, then the final `r` machines while the
//!   partial block tops up (Table 1's 3 -> 14 example). Phase 3 is scheduled
//!   with a bipartite edge-colouring solver, which guarantees `s` perfect
//!   rounds.
//!
//! Scale-in schedules are the exact time-reverse of scale-out schedules,
//! with machines deallocated as soon as they are drained.
//!
//! ```
//! use pstore_core::schedule::MigrationSchedule;
//! let s = MigrationSchedule::plan(3, 14); // Table 1's example
//! assert_eq!(s.total_rounds(), 11);
//! assert_eq!(s.total_transfers(), 33);
//! s.check_valid().unwrap();
//! ```

use crate::cost_model::{eff_cap, move_time};
use crate::invariant::{InvariantId, Violation};
use serde::{Deserialize, Serialize};

/// A single machine-to-machine transfer of `1/(A*B)` of the database.
/// With `P` partitions per machine it runs as `P` parallel partition
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Sending machine id.
    pub from: u32,
    /// Receiving machine id.
    pub to: u32,
}

/// One round of parallel transfers (a matching: no machine appears twice).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round {
    /// The concurrent transfers of this round.
    pub transfers: Vec<Transfer>,
}

/// A complete schedule for one move.
///
/// Machine ids: `0..min(B, A)` are the machines present before and after;
/// on scale-out ids `B..A` are the new machines, on scale-in ids `A..B` are
/// the machines being drained and removed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationSchedule {
    b: u32,
    a: u32,
    rounds: Vec<Round>,
    /// For each transient machine id (new on scale-out, leaving on
    /// scale-in), the rounds `[start, end)` during which it is allocated,
    /// as indices into `rounds` (end exclusive; `end == rounds.len()` means
    /// "until the move completes").
    presence: Vec<(u32, usize, usize)>,
}

impl MigrationSchedule {
    /// Plans the schedule for a move from `b` to `a` machines.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn plan(b: u32, a: u32) -> Self {
        assert!(b > 0 && a > 0, "machine counts must be positive");
        let schedule = Self::plan_unchecked(b, a);
        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::SCHEDULE_PLANNED,
            "from" => b,
            "to" => a,
            "rounds" => schedule.rounds.len(),
        );
        #[cfg(feature = "check-invariants")]
        {
            let violations = schedule.check_violations();
            debug_assert!(
                violations.is_empty(),
                "MigrationSchedule::plan({b}, {a}) violated its own invariants:\n{}",
                crate::invariant::report(&violations)
            );
        }
        schedule
    }

    fn plan_unchecked(b: u32, a: u32) -> Self {
        if b == a {
            return MigrationSchedule {
                b,
                a,
                rounds: Vec::new(),
                presence: Vec::new(),
            };
        }
        if b < a {
            let (rounds, alloc) = scale_out_rounds(b, a - b);
            let total = rounds.len();
            let presence = alloc.into_iter().map(|(m, r)| (m, r, total)).collect();
            MigrationSchedule {
                b,
                a,
                rounds,
                presence,
            }
        } else {
            // Scale-in b -> a: time-reverse the scale-out a -> b schedule.
            // In the scale-out view, "senders" 0..a are the keepers and
            // "receivers" a..b are, here, the leaving machines that drain
            // back into the keepers.
            let (out_rounds, alloc) = scale_out_rounds(a, b - a);
            let total = out_rounds.len();
            let rounds: Vec<Round> = out_rounds
                .into_iter()
                .rev()
                .map(|r| Round {
                    transfers: r
                        .transfers
                        .into_iter()
                        .map(|t| Transfer {
                            from: t.to,
                            to: t.from,
                        })
                        .collect(),
                })
                .collect();
            // A machine allocated at round r in forward time (present for
            // rounds [r, total)) is present for reversed rounds
            // [0, total - r) and deallocated as soon as it drains.
            let presence = alloc.into_iter().map(|(m, r)| (m, 0, total - r)).collect();
            MigrationSchedule {
                b,
                a,
                rounds,
                presence,
            }
        }
    }

    /// Machines before the move.
    pub fn before(&self) -> u32 {
        self.b
    }

    /// Machines after the move.
    pub fn after(&self) -> u32 {
        self.a
    }

    /// The rounds in execution order.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Total number of rounds (equals `max(s, Δ)`, the theoretical minimum).
    pub fn total_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total machine-pair transfers (`s * Δ`).
    pub fn total_transfers(&self) -> usize {
        self.rounds.iter().map(|r| r.transfers.len()).sum()
    }

    /// Fraction of the database each pair transfer carries: `1/(A*B)`.
    pub fn pair_fraction(&self) -> f64 {
        1.0 / (self.a as f64 * self.b as f64)
    }

    /// Number of machines allocated during round `i`.
    #[allow(clippy::cast_possible_truncation)] // at most `max(B, A)` transient machines
    pub fn machines_in_round(&self, i: usize) -> u32 {
        let stable = self.b.min(self.a);
        let transient = self
            .presence
            .iter()
            .filter(|&&(_, start, end)| i >= start && i < end)
            .count() as u32;
        stable + transient
    }

    /// Average machines allocated over the move (each round lasts the same
    /// wall-clock time, so this is the simple mean over rounds). Matches
    /// Algorithm 4's closed form.
    pub fn avg_machines(&self) -> f64 {
        if self.rounds.is_empty() {
            return self.a as f64;
        }
        (0..self.rounds.len())
            .map(|i| self.machines_in_round(i) as f64)
            .sum::<f64>()
            / self.rounds.len() as f64
    }

    /// Fraction of the *moving* data transferred after `i` completed rounds
    /// (the `f` of Equation 7).
    pub fn fraction_after_round(&self, i: usize) -> f64 {
        let total = self.total_transfers();
        if total == 0 {
            return 1.0;
        }
        let done: usize = self.rounds[..i.min(self.rounds.len())]
            .iter()
            .map(|r| r.transfers.len())
            .sum();
        done as f64 / total as f64
    }

    /// Wall-clock duration of the move given `d` (single-thread full-DB
    /// migration time) and `p` partitions per machine — equals Equation 3.
    pub fn duration(&self, p: u32, d: f64) -> f64 {
        move_time(self.b, self.a, p, d)
    }

    /// Duration of a single round: one pair transfer of `1/(A*B)` of the
    /// database with `p` parallel partition streams.
    pub fn round_duration(&self, p: u32, d: f64) -> f64 {
        d * self.pair_fraction() / p as f64
    }

    /// The (time-in-units-of-D, machines-allocated, effective-capacity)
    /// trajectory sampled at round boundaries — the data behind Fig 4.
    pub fn trajectory(&self, p: u32, d: f64, q: f64) -> Vec<TrajectoryPoint> {
        let rd = self.round_duration(p, d);
        (0..=self.rounds.len())
            .map(|i| TrajectoryPoint {
                time: i as f64 * rd,
                machines: if i < self.rounds.len() {
                    self.machines_in_round(i)
                } else {
                    self.a.max(self.b.min(self.a))
                },
                effective_capacity: eff_cap(self.b, self.a, self.fraction_after_round(i), q),
            })
            .collect()
    }

    /// The artifact label used in [`Violation`] diagnostics.
    fn artifact(&self) -> String {
        format!("schedule {}->{}", self.b, self.a)
    }

    /// Checks every structural invariant of this schedule, returning one
    /// [`Violation`] per failure (empty when valid).
    ///
    /// Checked invariants: `SCH-01` round-count minimality, `SCH-02`
    /// per-round matching validity, `SCH-03` pair coverage (`1/(A*B)`
    /// data conservation), `SCH-04` just-in-time presence, `SCH-05`
    /// sender/receiver role direction, and `SCH-06` empty no-op. The
    /// cross-schedule invariants (`SCH-07` reversal symmetry, `SCH-08`
    /// Algorithm 4 agreement) live in the `pstore-verify` crate because
    /// they compare multiple artifacts.
    pub fn check_violations(&self) -> Vec<Violation> {
        use std::collections::HashSet;
        let mut out = Vec::new();
        let artifact = self.artifact();
        if self.b == self.a {
            if !self.rounds.is_empty() {
                out.push(Violation::new(
                    InvariantId::ScheduleNoopEmpty,
                    artifact,
                    format!("noop move must have no rounds, found {}", self.rounds.len()),
                ));
            }
            return out;
        }
        let s = self.b.min(self.a);
        let delta = self.b.abs_diff(self.a);
        let (senders, receivers): (Vec<u32>, Vec<u32>) = if self.b < self.a {
            ((0..self.b).collect(), (self.b..self.a).collect())
        } else {
            ((self.a..self.b).collect(), (0..self.a).collect())
        };

        if self.rounds.len() != s.max(delta) as usize {
            out.push(Violation::new(
                InvariantId::ScheduleRoundCount,
                artifact.clone(),
                format!(
                    "expected {} rounds, found {}",
                    s.max(delta),
                    self.rounds.len()
                ),
            ));
        }

        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for (i, round) in self.rounds.iter().enumerate() {
            let mut busy: HashSet<u32> = HashSet::new();
            for t in &round.transfers {
                if !senders.contains(&t.from) {
                    out.push(Violation::new(
                        InvariantId::ScheduleRoleDirection,
                        artifact.clone(),
                        format!("round {i}: {} is not a sender", t.from),
                    ));
                }
                if !receivers.contains(&t.to) {
                    out.push(Violation::new(
                        InvariantId::ScheduleRoleDirection,
                        artifact.clone(),
                        format!("round {i}: {} is not a receiver", t.to),
                    ));
                }
                if !busy.insert(t.from) || !busy.insert(t.to) {
                    out.push(Violation::new(
                        InvariantId::ScheduleRoundMatching,
                        artifact.clone(),
                        format!("round {i}: machine used twice"),
                    ));
                }
                if !seen.insert((t.from, t.to)) {
                    out.push(Violation::new(
                        InvariantId::SchedulePairCoverage,
                        artifact.clone(),
                        format!("pair {} -> {} repeated", t.from, t.to),
                    ));
                }
                // Transient machines must be allocated during this round.
                for m in [t.from, t.to] {
                    if let Some(&(_, start, end)) =
                        self.presence.iter().find(|&&(id, _, _)| id == m)
                    {
                        if i < start || i >= end {
                            out.push(Violation::new(
                                InvariantId::SchedulePresence,
                                artifact.clone(),
                                format!(
                                    "round {i}: machine {m} used outside presence [{start}, {end})"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        let expected_pairs = (s * delta) as usize;
        if seen.len() != expected_pairs {
            out.push(Violation::new(
                InvariantId::SchedulePairCoverage,
                artifact,
                format!(
                    "expected {expected_pairs} distinct pairs (1/(A*B) of the data each), found {}",
                    seen.len()
                ),
            ));
        }
        out
    }

    /// Validates structural invariants; used by tests and debug assertions.
    ///
    /// A thin `Result` adapter over [`Self::check_violations`] — the error
    /// string is the first violation's report line.
    pub fn check_valid(&self) -> Result<(), String> {
        match self.check_violations().into_iter().next() {
            None => Ok(()),
            Some(v) => Err(v.to_string()),
        }
    }
}

impl Round {
    /// Expands the machine-level transfers of this round into the `p`
    /// parallel partition streams each runs (partition `i` of the sender
    /// pairs with partition `i` of the receiver, §4.4.1's "at most one
    /// transfer per partition").
    pub fn partition_streams(&self, p: u32) -> Vec<PartitionStream> {
        assert!(p > 0, "partitions per machine must be positive");
        self.transfers
            .iter()
            .flat_map(|t| {
                (0..p).map(move |i| PartitionStream {
                    from_machine: t.from,
                    to_machine: t.to,
                    partition: i,
                })
            })
            .collect()
    }
}

/// One partition-to-partition stream of a machine-pair transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStream {
    /// Sending machine.
    pub from_machine: u32,
    /// Receiving machine.
    pub to_machine: u32,
    /// Partition index on both sides.
    pub partition: u32,
}

/// One sampled point of the Fig 4 trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Elapsed time since the move began, in the unit of `d`.
    pub time: f64,
    /// Machines allocated at this instant.
    pub machines: u32,
    /// Effective capacity (Equation 7) at this instant.
    pub effective_capacity: f64,
}

/// Builds the scale-out schedule for `s` senders (ids `0..s`) and `delta`
/// receivers (ids `s..s+delta`). Returns the rounds plus, for each receiver,
/// the round index at whose start it is allocated.
fn scale_out_rounds(s: u32, delta: u32) -> (Vec<Round>, Vec<(u32, usize)>) {
    debug_assert!(s > 0 && delta > 0);
    let mut rounds: Vec<Round> = Vec::new();
    let mut alloc: Vec<(u32, usize)> = Vec::new();

    if delta <= s {
        // Case 1: all receivers at once; senders rotate round-robin.
        for m in 0..delta {
            alloc.push((s + m, 0));
        }
        for t in 0..s {
            let transfers = (0..delta)
                .map(|j| Transfer {
                    from: (j + t) % s,
                    to: s + j,
                })
                .collect();
            rounds.push(Round { transfers });
        }
        return (rounds, alloc);
    }

    let k = delta / s;
    let r = delta % s;
    let full_blocks = if r == 0 { k } else { k - 1 };

    // Phase 1 (and all of case 2): just-in-time blocks of s receivers, each
    // filled completely by s perfect-matching rounds.
    for block in 0..full_blocks {
        let base = s + block * s;
        let start_round = rounds.len();
        for m in 0..s {
            alloc.push((base + m, start_round));
        }
        for t in 0..s {
            let transfers = (0..s)
                .map(|i| Transfer {
                    from: i,
                    to: base + (i + t) % s,
                })
                .collect();
            rounds.push(Round { transfers });
        }
    }
    if r == 0 {
        return (rounds, alloc);
    }

    // Phase 2: one block of s receivers, filled only r/s of the way.
    let base2 = s + full_blocks * s;
    let phase2_start = rounds.len();
    for m in 0..s {
        alloc.push((base2 + m, phase2_start));
    }
    for t in 0..r {
        let transfers = (0..s)
            .map(|i| Transfer {
                from: i,
                to: base2 + (i + t) % s,
            })
            .collect();
        rounds.push(Round { transfers });
    }

    // Phase 3: the final r receivers arrive; the partial block tops up. The
    // remaining bipartite graph is s-regular on the sender side, so an edge
    // colouring with s colours yields s perfect rounds.
    let base3 = base2 + s;
    let phase3_start = rounds.len();
    for m in 0..r {
        alloc.push((base3 + m, phase3_start));
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for q in 0..s {
        // Receiver base2 + q already got senders (q - t) mod s, t in 0..r.
        for t in r..s {
            let i = (q + s - t % s) % s;
            edges.push((i, base2 + q));
        }
    }
    for m in 0..r {
        for i in 0..s {
            edges.push((i, base3 + m));
        }
    }
    for class in edge_color_bipartite(&edges, s as usize) {
        rounds.push(Round {
            transfers: class
                .into_iter()
                .map(|(from, to)| Transfer { from, to })
                .collect(),
        });
    }
    (rounds, alloc)
}

/// Properly edge-colours a bipartite multigraph-free graph with `colors`
/// colours (must be at least the maximum degree) using the alternating-path
/// (König) method. Returns the colour classes, each a matching.
fn edge_color_bipartite(edges: &[(u32, u32)], colors: usize) -> Vec<Vec<(u32, u32)>> {
    use std::collections::HashMap;

    // Dense remap for left (senders) and right (receivers) vertices.
    let mut left_ids: HashMap<u32, usize> = HashMap::new();
    let mut right_ids: HashMap<u32, usize> = HashMap::new();
    for &(u, v) in edges {
        let next = left_ids.len();
        left_ids.entry(u).or_insert(next);
        let next = right_ids.len();
        right_ids.entry(v).or_insert(next);
    }
    // at_left[v][c] = edge index currently coloured c at left vertex v.
    let mut at_left = vec![vec![None::<usize>; colors]; left_ids.len()];
    let mut at_right = vec![vec![None::<usize>; colors]; right_ids.len()];
    let mut edge_color = vec![usize::MAX; edges.len()];

    let free = |slots: &Vec<Option<usize>>| -> usize {
        slots
            .iter()
            .position(|s| s.is_none())
            .unwrap_or_else(|| unreachable!("colour count below maximum degree"))
    };

    for (e, &(u_raw, v_raw)) in edges.iter().enumerate() {
        let u = left_ids[&u_raw];
        let v = right_ids[&v_raw];
        let cu = free(&at_left[u]);
        let cv = free(&at_right[v]);
        if cu == cv || at_right[v][cu].is_none() {
            // cu free at both ends.
            let c = cu;
            edge_color[e] = c;
            at_left[u][c] = Some(e);
            at_right[v][c] = Some(e);
            continue;
        }
        // Flip the (cu, cv)-alternating path starting at v along colour cu.
        // Path: v --cu-- l1 --cv-- r1 --cu-- l2 ... The path cannot reach u
        // (u has no cu edge and left vertices are entered via cu edges).
        // Collect the path first, then recolour in two passes so the walk
        // never follows an edge it just flipped.
        let mut path: Vec<usize> = Vec::new();
        let mut at_right_vertex = true;
        let mut vertex = v;
        let mut want = cu;
        loop {
            let slot = if at_right_vertex {
                at_right[vertex][want]
            } else {
                at_left[vertex][want]
            };
            let Some(edge) = slot else { break };
            path.push(edge);
            let (lu, rv) = (left_ids[&edges[edge].0], right_ids[&edges[edge].1]);
            vertex = if at_right_vertex { lu } else { rv };
            at_right_vertex = !at_right_vertex;
            want = if want == cu { cv } else { cu };
        }
        for &edge in &path {
            let (lu, rv) = (left_ids[&edges[edge].0], right_ids[&edges[edge].1]);
            let c = edge_color[edge];
            at_left[lu][c] = None;
            at_right[rv][c] = None;
        }
        for &edge in &path {
            let (lu, rv) = (left_ids[&edges[edge].0], right_ids[&edges[edge].1]);
            let flipped = if edge_color[edge] == cu { cv } else { cu };
            edge_color[edge] = flipped;
            at_left[lu][flipped] = Some(edge);
            at_right[rv][flipped] = Some(edge);
        }
        // cu is now free at v (and still free at u).
        edge_color[e] = cu;
        at_left[u][cu] = Some(e);
        at_right[v][cu] = Some(e);
    }

    let mut classes = vec![Vec::new(); colors];
    for (e, &(u, v)) in edges.iter().enumerate() {
        classes[edge_color[e]].push((u, v));
    }
    classes.retain(|c| !c.is_empty());
    classes
}

/// Returns the schedule's implied maximum parallelism, for cross-checking
/// against Equation 2 (machine-pair granularity, i.e. `max‖ / P`).
pub fn peak_parallelism(schedule: &MigrationSchedule) -> usize {
    schedule
        .rounds()
        .iter()
        .map(|r| r.transfers.len())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests assert exact rational arithmetic on tiny counts
    use super::*;
    use crate::cost_model::{avg_machines_allocated, max_parallel_transfers};

    #[test]
    fn noop_schedule_is_empty() {
        let s = MigrationSchedule::plan(4, 4);
        assert_eq!(s.total_rounds(), 0);
        s.check_valid().unwrap();
    }

    #[test]
    fn case1_three_to_five() {
        // Fig 4a: Δ = 2 <= s = 3. All machines at once, 3 rounds.
        let s = MigrationSchedule::plan(3, 5);
        s.check_valid().unwrap();
        assert_eq!(s.total_rounds(), 3);
        assert_eq!(s.total_transfers(), 6);
        assert_eq!(s.machines_in_round(0), 5);
        assert_eq!(s.avg_machines(), 5.0);
    }

    #[test]
    fn case2_three_to_nine() {
        // Fig 4b: Δ = 6 = 2s. Two just-in-time blocks, 6 rounds.
        let s = MigrationSchedule::plan(3, 9);
        s.check_valid().unwrap();
        assert_eq!(s.total_rounds(), 6);
        assert_eq!(s.machines_in_round(0), 6); // first block only
        assert_eq!(s.machines_in_round(3), 9); // second block allocated
        assert!((s.avg_machines() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn case3_three_to_fourteen_matches_table1() {
        // Table 1: Δ = 11, 11 rounds in three phases.
        let s = MigrationSchedule::plan(3, 14);
        s.check_valid().unwrap();
        assert_eq!(s.total_rounds(), 11);
        assert_eq!(s.total_transfers(), 33);
        // Phase 1: rounds 0-5 with blocks of 3 (6, then 9 machines).
        assert_eq!(s.machines_in_round(0), 6);
        assert_eq!(s.machines_in_round(3), 9);
        // Phase 2: rounds 6-7 with 12 machines.
        assert_eq!(s.machines_in_round(6), 12);
        assert_eq!(s.machines_in_round(7), 12);
        // Phase 3: rounds 8-10 with all 14.
        assert_eq!(s.machines_in_round(8), 14);
        assert_eq!(s.machines_in_round(10), 14);
        // Average matches Algorithm 4's closed form.
        assert!((s.avg_machines() - 111.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn schedules_match_algorithm4_closed_form() {
        for b in 1..=10u32 {
            for a in 1..=16u32 {
                let s = MigrationSchedule::plan(b, a);
                s.check_valid()
                    .unwrap_or_else(|e| panic!("invalid schedule {b}->{a}: {e}"));
                let avg = s.avg_machines();
                let expect = avg_machines_allocated(b, a);
                assert!(
                    (avg - expect).abs() < 1e-9,
                    "avg mismatch for {b}->{a}: schedule {avg} vs closed form {expect}"
                );
            }
        }
    }

    #[test]
    fn scale_in_is_valid_and_symmetric() {
        for (b, a) in [(5u32, 3u32), (9, 3), (14, 3), (10, 4), (7, 2)] {
            let s = MigrationSchedule::plan(b, a);
            s.check_valid()
                .unwrap_or_else(|e| panic!("invalid schedule {b}->{a}: {e}"));
            let mirror = MigrationSchedule::plan(a, b);
            assert_eq!(s.total_rounds(), mirror.total_rounds());
            assert!((s.avg_machines() - mirror.avg_machines()).abs() < 1e-9);
        }
    }

    #[test]
    fn scale_in_deallocates_early() {
        // 9 -> 3: leaving machines drain in blocks; once drained they free.
        let s = MigrationSchedule::plan(9, 3);
        assert_eq!(s.total_rounds(), 6);
        assert_eq!(s.machines_in_round(0), 9);
        assert_eq!(s.machines_in_round(5), 6); // first drained block gone
        assert!((s.avg_machines() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn round_count_is_theoretical_minimum() {
        for b in 1..=12u32 {
            for a in 1..=12u32 {
                if a == b {
                    continue;
                }
                let s = MigrationSchedule::plan(b, a);
                let small = b.min(a);
                let delta = b.abs_diff(a);
                assert_eq!(s.total_rounds() as u32, small.max(delta), "{b}->{a}");
            }
        }
    }

    #[test]
    fn peak_parallelism_matches_equation2() {
        for (b, a) in [(3u32, 5u32), (3, 9), (3, 14), (5, 3), (14, 3), (4, 10)] {
            let s = MigrationSchedule::plan(b, a);
            assert_eq!(
                peak_parallelism(&s) as u32,
                max_parallel_transfers(b, a, 1),
                "{b}->{a}"
            );
        }
    }

    #[test]
    fn duration_matches_equation3() {
        let s = MigrationSchedule::plan(3, 14);
        let d = 4646.0;
        let direct = s.duration(6, d);
        let from_rounds = s.total_rounds() as f64 * s.round_duration(6, d);
        assert!((direct - from_rounds).abs() < 1e-6);
    }

    #[test]
    fn trajectory_starts_at_b_and_ends_at_a_capacity() {
        let q = 285.0;
        let s = MigrationSchedule::plan(3, 14);
        let traj = s.trajectory(1, 1.0, q);
        assert_eq!(traj.len(), 12);
        assert!((traj[0].effective_capacity - 3.0 * q).abs() < 1e-6);
        assert!((traj.last().unwrap().effective_capacity - 14.0 * q).abs() < 1e-6);
        // Effective capacity is monotone non-decreasing on scale-out.
        for w in traj.windows(2) {
            assert!(w[1].effective_capacity >= w[0].effective_capacity - 1e-9);
        }
        // Machines allocated always at least the eff-cap-equivalent count.
        for p in &traj {
            assert!(p.machines as f64 * q >= p.effective_capacity - 1e-6);
        }
    }

    #[test]
    fn senders_and_receivers_have_uniform_pair_counts() {
        use std::collections::HashMap;
        let s = MigrationSchedule::plan(3, 14);
        let mut sent: HashMap<u32, usize> = HashMap::new();
        let mut recv: HashMap<u32, usize> = HashMap::new();
        for round in s.rounds() {
            for t in &round.transfers {
                *sent.entry(t.from).or_default() += 1;
                *recv.entry(t.to).or_default() += 1;
            }
        }
        // Every sender sends Δ = 11 pairs; every receiver gets s = 3 pairs.
        assert_eq!(sent.len(), 3);
        assert!(sent.values().all(|&c| c == 11));
        assert_eq!(recv.len(), 11);
        assert!(recv.values().all(|&c| c == 3));
    }

    #[test]
    fn partition_streams_expand_each_pair_p_ways() {
        let s = MigrationSchedule::plan(3, 9);
        let round = &s.rounds()[0];
        let streams = round.partition_streams(6);
        assert_eq!(streams.len(), round.transfers.len() * 6);
        // No partition appears twice on the same machine side.
        let mut seen = std::collections::HashSet::new();
        for st in &streams {
            assert!(seen.insert((st.from_machine, st.partition)));
            assert!(seen.insert((st.to_machine, st.partition)));
        }
    }

    #[test]
    fn edge_colouring_produces_proper_matchings() {
        // Complete bipartite K4,4 needs exactly 4 colours.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 100..104u32 {
                edges.push((u, v));
            }
        }
        let classes = edge_color_bipartite(&edges, 4);
        assert_eq!(classes.len(), 4);
        for class in &classes {
            assert_eq!(class.len(), 4);
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in class {
                assert!(seen.insert(u));
                assert!(seen.insert(v));
            }
        }
    }
}
