//! The predictive elasticity dynamic program (§4.3, Algorithms 1–3).
//!
//! Given a horizon of predicted load, the planner finds the cheapest
//! contiguous sequence of moves such that predicted load never exceeds the
//! system's *effective* capacity — including while data is in flight — and
//! the plan ends with as few machines as possible. The problem has optimal
//! substructure: the cheapest way to hold `A` machines at time `t` extends
//! the cheapest way to hold some `B` at time `t - T(B, A)` with the move
//! `B -> A`, which is exactly the recurrence memoised here.

use crate::cost_model::{avg_machines_allocated, cap, eff_cap, machines_for_load, move_time};
use crate::moves::{Move, MoveSeq};
use crate::params::SystemParams;

/// Planner configuration, in planning-interval units.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Target per-machine throughput `Q` (load units, e.g. txn/s).
    pub q: f64,
    /// Single-thread whole-database migration time `D`, in intervals.
    pub d_intervals: f64,
    /// Partitions per machine `P`.
    pub partitions_per_node: u32,
    /// Hard cap on cluster size.
    pub max_machines: u32,
}

impl PlannerConfig {
    /// Derives the planning units from the system parameters.
    pub fn from_params(params: &SystemParams) -> Self {
        params.validate();
        PlannerConfig {
            q: params.q,
            d_intervals: params.d_intervals(),
            partitions_per_node: params.partitions_per_node,
            max_machines: params.max_machines,
        }
    }
}

/// Behavioural switches for ablation studies. The defaults reproduce the
/// paper's algorithm; switching a flag off isolates the contribution of
/// one design choice (exercised by the `ablations` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Check predicted load against the *effective* capacity of Eq 7 while
    /// a move is in flight (the paper's Algorithm 3). When off, moves are
    /// only checked against the post-move capacity `cap(A)` — the naive
    /// model that Fig 4c warns underprovisions during large scale-outs.
    pub effective_capacity_aware: bool,
    /// Account the true machine cost of a move via Algorithm 4. When off,
    /// every move is costed as if the full target allocation were held for
    /// its whole duration (no just-in-time credit).
    pub jit_allocation_cost: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            effective_capacity_aware: true,
            jit_allocation_cost: true,
        }
    }
}

/// The predictive elasticity planner.
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: PlannerConfig,
    opts: PlannerOptions,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    cost: f64,
    prev_time: usize,
    prev_nodes: u32,
}

impl Planner {
    /// Creates a planner.
    ///
    /// # Panics
    /// Panics on non-positive `q`, `d_intervals`, partitions, or machines.
    pub fn new(cfg: PlannerConfig) -> Self {
        Self::with_options(cfg, PlannerOptions::default())
    }

    /// Creates a planner with explicit ablation options.
    ///
    /// # Panics
    /// Panics on non-positive `q`, `d_intervals`, partitions, or machines.
    pub fn with_options(cfg: PlannerConfig, opts: PlannerOptions) -> Self {
        assert!(cfg.q > 0.0, "Q must be positive");
        assert!(cfg.d_intervals > 0.0, "D must be positive");
        assert!(cfg.partitions_per_node > 0, "P must be positive");
        assert!(cfg.max_machines > 0, "max_machines must be positive");
        Planner { cfg, opts }
    }

    /// The configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Machines needed to serve `load` at target throughput `Q`.
    pub fn machines_needed(&self, load: f64) -> u32 {
        machines_for_load(load, self.cfg.q)
    }

    /// Duration of a move in whole intervals (Equation 3 rounded up; the
    /// "do nothing" move reports 0 here and is stretched to one interval
    /// inside the recurrence, per Algorithm 2 line 9).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // ceil of a non-negative time
    pub fn move_intervals(&self, b: u32, a: u32) -> usize {
        if b == a {
            return 0;
        }
        move_time(b, a, self.cfg.partitions_per_node, self.cfg.d_intervals).ceil() as usize
    }

    /// Cost of a move in machine-intervals (Equation 4 with the
    /// interval-rounded duration, so the dynamic program's accounting sums
    /// to machine-intervals over the horizon).
    fn move_cost_intervals(&self, b: u32, a: u32) -> f64 {
        if b == a {
            return b as f64; // stretched noop: B machines for 1 interval
        }
        let machines = if self.opts.jit_allocation_cost {
            avg_machines_allocated(b, a)
        } else {
            b.max(a) as f64
        };
        self.move_intervals(b, a).max(1) as f64 * machines
    }

    /// Algorithm 1: the optimal sequence of moves for the predicted load.
    ///
    /// `load[0]` is the current measured load; `load[t]` for `t >= 1` are
    /// the predictions. The plan starts at `n0` machines at `t = 0` and
    /// spans `load.len() - 1` intervals. Returns `None` when no feasible
    /// plan exists (the cluster cannot scale out fast enough, or the peak
    /// exceeds `max_machines * Q`) — the controller then falls back to a
    /// reactive emergency scale-out (§4.3.1).
    pub fn best_moves(&self, load: &[f64], n0: u32) -> Option<MoveSeq> {
        assert!(n0 >= 1, "must start with at least one machine");
        assert!(!load.is_empty(), "load horizon must be non-empty");
        let t_max = load.len() - 1;
        if t_max == 0 {
            return (load[0] <= cap(n0, self.cfg.q)).then(MoveSeq::default);
        }

        // Profiler span over the DP search (begin/end via RAII so every
        // return path closes it).
        pstore_telemetry::tel_span!(planner_span, "planner_dp");

        // Z: machines needed for the predicted peak, bounded by hardware.
        let peak = load.iter().copied().fold(0.0, f64::max);
        let z = machines_for_load(peak, self.cfg.q)
            .max(n0)
            .clamp(1, self.cfg.max_machines);

        // Memo over (t, A); `None` = not computed. The table is shared
        // across the final-count loop below — `cost(t, A)` is independent
        // of the loop index, so sharing is a pure optimisation over
        // Algorithm 1's per-iteration reset.
        let mut memo: Vec<Option<Cell>> = vec![None; (t_max + 1) * (z as usize + 1)];

        for end_nodes in 1..=z {
            let c = self.cost(t_max, end_nodes, load, n0, z, &mut memo);
            if c.is_finite() {
                let seq = self.backtrack(t_max, end_nodes, z, &memo);
                pstore_telemetry::tel_event!(
                    pstore_telemetry::kinds::PLANNER,
                    "horizon" => t_max,
                    "n0" => n0,
                    "feasible" => true,
                    "cost" => c,
                    "end_machines" => end_nodes,
                );
                #[cfg(feature = "check-invariants")]
                {
                    let violations = crate::moves::check_moves(seq.moves());
                    debug_assert!(
                        violations.is_empty(),
                        "planner produced a structurally invalid sequence:\n{}",
                        crate::invariant::report(&violations)
                    );
                    // The effective-capacity ablation knowingly emits plans
                    // that fail the Eq 7 check — that failure is its point.
                    debug_assert!(
                        !self.opts.effective_capacity_aware
                            || self.verify_feasible(&seq, load).is_ok(),
                        "planner produced an infeasible plan: {:?}",
                        self.verify_feasible(&seq, load)
                    );
                }
                return Some(seq);
            }
        }
        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::PLANNER,
            "horizon" => t_max,
            "n0" => n0,
            "feasible" => false,
        );
        None
    }

    /// Algorithm 2: minimum cost of a feasible series of moves ending with
    /// `a` nodes at time `t`.
    fn cost(
        &self,
        t: usize,
        a: u32,
        load: &[f64],
        n0: u32,
        z: u32,
        memo: &mut Vec<Option<Cell>>,
    ) -> f64 {
        // Constraint violations and insufficient capacity are infinitely
        // expensive.
        if t == 0 && a != n0 {
            return f64::INFINITY;
        }
        if load[t] > cap(a, self.cfg.q) {
            return f64::INFINITY;
        }
        let idx = t * (z as usize + 1) + a as usize;
        if let Some(cell) = memo[idx] {
            return cell.cost;
        }
        let cell = if t == 0 {
            Cell {
                cost: a as f64,
                prev_time: 0,
                prev_nodes: a,
            }
        } else {
            let mut best = Cell {
                cost: f64::INFINITY,
                prev_time: 0,
                prev_nodes: 0,
            };
            for b in 1..=z {
                let c = self.sub_cost(t, b, a, load, n0, z, memo);
                if c < best.cost {
                    let dur = self.move_intervals(b, a).max(1);
                    best = Cell {
                        cost: c,
                        prev_time: t - dur,
                        prev_nodes: b,
                    };
                }
            }
            best
        };
        memo[idx] = Some(cell);
        cell.cost
    }

    /// Algorithm 3: minimum cost ending at time `t` when the last move goes
    /// from `b` to `a` nodes.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's signature
    fn sub_cost(
        &self,
        t: usize,
        b: u32,
        a: u32,
        load: &[f64],
        n0: u32,
        z: u32,
        memo: &mut Vec<Option<Cell>>,
    ) -> f64 {
        // A move must last at least one interval.
        let dur = self.move_intervals(b, a).max(1);
        let Some(start) = t.checked_sub(dur) else {
            // The move would need to start in the past.
            return f64::INFINITY;
        };
        // During the move, predicted load must stay under the *effective*
        // capacity (Equation 7), with migration progress f = i / T(B, A).
        // (The naive ablation checks only the post-move capacity.)
        for i in 1..=dur {
            let capacity = if self.opts.effective_capacity_aware {
                let f = i as f64 / dur as f64;
                eff_cap(b, a, f, self.cfg.q)
            } else {
                cap(a, self.cfg.q)
            };
            if load[start + i] > capacity {
                return f64::INFINITY;
            }
        }
        let prior = self.cost(start, b, load, n0, z, memo);
        prior + self.move_cost_intervals(b, a)
    }

    /// Walks the memo backwards from `(t, n)` to `t = 0`, emitting moves in
    /// forward order.
    fn backtrack(&self, t_end: usize, n_end: u32, z: u32, memo: &[Option<Cell>]) -> MoveSeq {
        let mut moves = Vec::new();
        let mut t = t_end;
        let mut n = n_end;
        while t > 0 {
            let Some(cell) = memo[t * (z as usize + 1) + n as usize] else {
                unreachable!("backtrack visits only memoised states");
            };
            moves.push(Move {
                start: cell.prev_time,
                end: t,
                from: cell.prev_nodes,
                to: n,
            });
            t = cell.prev_time;
            n = cell.prev_nodes;
        }
        moves.reverse();
        MoveSeq::new(moves)
    }

    /// Checks that a move sequence keeps (effective) capacity above the
    /// given load at every interval it covers. Used by tests and the
    /// controller's debug assertions.
    pub fn verify_feasible(&self, seq: &MoveSeq, load: &[f64]) -> Result<(), String> {
        for m in seq.moves() {
            let dur = m.duration();
            for i in 1..=dur {
                let t = m.start + i;
                if t >= load.len() {
                    return Err(format!("move {m} extends past the horizon"));
                }
                let capacity = if m.is_noop() {
                    cap(m.from, self.cfg.q)
                } else {
                    eff_cap(m.from, m.to, i as f64 / dur as f64, self.cfg.q)
                };
                if load[t] > capacity {
                    return Err(format!(
                        "load {:.1} exceeds effective capacity {:.1} at t={t} during {m}",
                        load[t], capacity
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Planner with Q = 100 and fast (1-interval) moves, making expected
    /// plans easy to compute by hand.
    fn fast_planner(max: u32) -> Planner {
        Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: 0.5,
            partitions_per_node: 1,
            max_machines: max,
        })
    }

    /// Planner with the paper's relative scales: moves between small
    /// clusters take several intervals.
    fn slow_planner(max: u32) -> Planner {
        Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: 15.0,
            partitions_per_node: 1,
            max_machines: max,
        })
    }

    #[test]
    fn flat_load_keeps_current_allocation() {
        let planner = fast_planner(10);
        let load = vec![150.0; 10];
        let seq = planner.best_moves(&load, 2).unwrap();
        assert!(seq.first_reconfiguration().is_none());
        assert_eq!(seq.final_machines(), Some(2));
        planner.verify_feasible(&seq, &load).unwrap();
    }

    #[test]
    fn overprovisioned_flat_load_scales_in() {
        let planner = fast_planner(10);
        let load = vec![150.0; 10];
        let seq = planner.best_moves(&load, 6).unwrap();
        assert_eq!(seq.final_machines(), Some(2));
        let first = seq.first_reconfiguration().unwrap();
        assert!(first.is_scale_in());
        planner.verify_feasible(&seq, &load).unwrap();
    }

    #[test]
    fn rising_load_scales_out_before_the_rise() {
        let planner = slow_planner(10);
        // Load jumps from 150 to 450 at t = 12: needs 5 machines there.
        let mut load = vec![150.0; 16];
        for v in &mut load[12..] {
            *v = 450.0;
        }
        let seq = planner.best_moves(&load, 2).unwrap();
        planner.verify_feasible(&seq, &load).unwrap();
        assert_eq!(seq.final_machines(), Some(5));
        let first = seq.first_reconfiguration().unwrap();
        assert!(first.is_scale_out());
        // The scale-out must complete by t = 12.
        assert!(first.end <= 12, "move {first} finishes too late");
    }

    #[test]
    fn plan_is_infeasible_when_rise_is_too_soon() {
        let planner = slow_planner(10);
        // Jump at t = 1: no time to migrate.
        let mut load = vec![150.0; 10];
        for v in &mut load[1..] {
            *v = 800.0;
        }
        assert!(planner.best_moves(&load, 2).is_none());
    }

    #[test]
    fn plan_is_infeasible_when_peak_exceeds_hardware() {
        let planner = fast_planner(4);
        let load = vec![150.0, 150.0, 900.0, 900.0];
        assert!(planner.best_moves(&load, 2).is_none());
    }

    #[test]
    fn current_overload_is_infeasible() {
        let planner = fast_planner(10);
        let load = vec![500.0, 100.0, 100.0];
        assert!(planner.best_moves(&load, 2).is_none());
    }

    #[test]
    fn scale_in_deferred_until_load_drops() {
        let planner = fast_planner(10);
        // High load for the first half, low after.
        let mut load = vec![380.0; 12];
        for v in &mut load[6..] {
            *v = 120.0;
        }
        let seq = planner.best_moves(&load, 4).unwrap();
        planner.verify_feasible(&seq, &load).unwrap();
        assert_eq!(seq.final_machines(), Some(2));
        let first = seq.first_reconfiguration().unwrap();
        // Cannot scale in while load is still high.
        assert!(first.start >= 5, "scaled in too early: {first}");
    }

    #[test]
    fn ends_with_fewest_feasible_machines() {
        let planner = fast_planner(10);
        // Load returns to trough by the end of the horizon.
        let load: Vec<f64> = (0..16)
            .map(|t| {
                let x = t as f64 / 15.0 * std::f64::consts::PI;
                120.0 + 500.0 * x.sin().max(0.0)
            })
            .collect();
        let seq = planner.best_moves(&load, 2).unwrap();
        planner.verify_feasible(&seq, &load).unwrap();
        // Trough needs ceil(120/100) = 2 machines.
        assert_eq!(seq.final_machines(), Some(2));
    }

    #[test]
    fn single_interval_horizon() {
        let planner = fast_planner(10);
        assert!(planner.best_moves(&[150.0], 2).is_some());
        assert!(planner.best_moves(&[250.0], 2).is_none());
    }

    #[test]
    fn plan_respects_effective_capacity_during_moves() {
        let planner = slow_planner(12);
        // Steady ramp to a high plateau.
        let load: Vec<f64> = (0..24).map(|t| 150.0 + 800.0 * (t as f64 / 23.0)).collect();
        let seq = planner.best_moves(&load, 2).unwrap();
        planner.verify_feasible(&seq, &load).unwrap();
        assert!(seq.final_machines().unwrap() >= 10);
    }

    #[test]
    fn machines_needed_rounds_up() {
        let planner = fast_planner(10);
        assert_eq!(planner.machines_needed(100.0), 1);
        assert_eq!(planner.machines_needed(101.0), 2);
        assert_eq!(planner.machines_needed(0.0), 1);
    }

    #[test]
    fn move_intervals_rounds_up_and_noop_is_zero() {
        let planner = slow_planner(10);
        assert_eq!(planner.move_intervals(3, 3), 0);
        // 2 -> 4, P=1: T = 15/2 * (1 - 2/4) = 3.75 -> 4 intervals.
        assert_eq!(planner.move_intervals(2, 4), 4);
    }

    #[test]
    fn optimality_matches_exhaustive_search_on_small_instances() {
        // With 1-interval moves the DP reduces to a shortest path over
        // machine-count trajectories; brute-force all trajectories and
        // compare total cost.
        let planner = fast_planner(4);
        let loads = [
            vec![150.0, 250.0, 350.0, 150.0],
            vec![150.0, 150.0, 380.0, 380.0, 120.0],
            vec![90.0, 90.0, 90.0],
            vec![110.0, 310.0, 110.0, 310.0],
        ];
        for load in &loads {
            let n0 = 2u32;
            let dp = planner.best_moves(load, n0);

            // Brute force: trajectories n_1..n_T with n_t in 1..=4.
            let t_max = load.len() - 1;
            let mut best: Option<f64> = None;
            let mut stack: Vec<Vec<u32>> = vec![vec![]];
            while let Some(traj) = stack.pop() {
                if traj.len() == t_max {
                    // Cost: n0 for t=0 plus per-step move costs.
                    let mut prev = n0;
                    let mut cost = n0 as f64;
                    let mut ok = load[0] <= 100.0 * n0 as f64;
                    for (t, &n) in traj.iter().enumerate() {
                        // 1-interval move prev -> n; end-state eff-cap at
                        // f=1 equals cap(n).
                        if load[t + 1] > 100.0 * n as f64 {
                            ok = false;
                            break;
                        }
                        cost += if n == prev {
                            n as f64
                        } else {
                            avg_machines_allocated(prev, n)
                        };
                        prev = n;
                    }
                    if ok {
                        best = Some(best.map_or(cost, |b: f64| b.min(cost)));
                    }
                    continue;
                }
                for n in 1..=4u32 {
                    let mut next = traj.clone();
                    next.push(n);
                    stack.push(next);
                }
            }

            match (dp, best) {
                (Some(seq), Some(opt)) => {
                    // Recompute the DP plan's cost the same way.
                    let mut cost = n0 as f64;
                    for m in seq.moves() {
                        cost += if m.is_noop() {
                            m.from as f64
                        } else {
                            avg_machines_allocated(m.from, m.to)
                        };
                    }
                    assert!(
                        (cost - opt).abs() < 1e-9,
                        "DP cost {cost} != brute-force optimum {opt} for {load:?}"
                    );
                }
                (None, None) => {}
                (dp, bf) => panic!(
                    "feasibility mismatch for {load:?}: dp={:?} bf={:?}",
                    dp.map(|s| s.moves().len()),
                    bf
                ),
            }
        }
    }

    #[test]
    fn naive_planner_ignores_effective_capacity() {
        // A big scale-out whose intermediate effective capacity is
        // insufficient: the faithful planner starts the move earlier (or
        // scales further), while the naive ablation happily schedules a
        // move whose mid-flight capacity is below the load.
        let cfg = PlannerConfig {
            q: 100.0,
            d_intervals: 18.0,
            partitions_per_node: 1,
            max_machines: 14,
        };
        let faithful = Planner::new(cfg.clone());
        let naive = Planner::with_options(
            cfg,
            PlannerOptions {
                effective_capacity_aware: false,
                jit_allocation_cost: true,
            },
        );
        // A step: flat 280, then a sustained 1250 plateau from t = 10.
        // The naive planner believes a move instantly grants cap(A), so it
        // delays the big scale-out into the rise; the faithful planner
        // must finish before the plateau arrives.
        let mut load = vec![280.0; 30];
        for v in &mut load[10..] {
            *v = 1250.0;
        }
        let naive_plan = naive.best_moves(&load, 3);
        if let Some(plan) = &naive_plan {
            // Judged by the *true* effective-capacity model, the naive plan
            // must be infeasible somewhere (that is the point of Eq 7).
            assert!(
                faithful.verify_feasible(plan, &load).is_err(),
                "naive plan unexpectedly feasible: {plan}"
            );
        }
        if let Some(plan) = faithful.best_moves(&load, 3) {
            faithful.verify_feasible(&plan, &load).unwrap();
        }
    }

    #[test]
    fn jit_cost_ablation_increases_move_cost() {
        let cfg = PlannerConfig {
            q: 100.0,
            d_intervals: 12.0,
            partitions_per_node: 1,
            max_machines: 14,
        };
        let jit = Planner::new(cfg.clone());
        let flat = Planner::with_options(
            cfg,
            PlannerOptions {
                effective_capacity_aware: true,
                jit_allocation_cost: false,
            },
        );
        // Both should find plans; the flat-cost planner believes moves are
        // pricier, so its internal costing differs, but its output must
        // still be feasible.
        let load: Vec<f64> = (0..24).map(|t| 150.0 + 40.0 * t as f64).collect();
        let a = jit.best_moves(&load, 2).expect("feasible");
        let b = flat.best_moves(&load, 2).expect("feasible");
        jit.verify_feasible(&a, &load).unwrap();
        flat.verify_feasible(&b, &load).unwrap();
    }

    #[test]
    fn verify_feasible_rejects_bad_plan() {
        let planner = fast_planner(10);
        let load = vec![150.0, 500.0, 150.0];
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 2,
                from: 2,
                to: 2,
            },
        ]);
        assert!(planner.verify_feasible(&seq, &load).is_err());
    }
}
