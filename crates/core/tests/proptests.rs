//! Property-based tests for the P-Store core algorithms.

use proptest::prelude::*;
use pstore_core::cost_model::{avg_machines_allocated, cap, eff_cap, move_time};
use pstore_core::partition_plan::SlotPlan;
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_core::schedule::MigrationSchedule;

proptest! {
    /// Every schedule is structurally valid: each pair exactly once, rounds
    /// are matchings, machines only used while allocated, minimum rounds.
    #[test]
    fn schedule_always_valid(b in 1u32..=20, a in 1u32..=20) {
        let s = MigrationSchedule::plan(b, a);
        prop_assert!(s.check_valid().is_ok(), "{b}->{a}: {:?}", s.check_valid());
    }

    /// The schedule-derived average machine count equals Algorithm 4's
    /// closed form.
    #[test]
    fn schedule_average_matches_algorithm4(b in 1u32..=20, a in 1u32..=20) {
        let s = MigrationSchedule::plan(b, a);
        let avg = s.avg_machines();
        let expect = avg_machines_allocated(b, a);
        prop_assert!((avg - expect).abs() < 1e-9, "{b}->{a}: {avg} vs {expect}");
    }

    /// Effective capacity stays between the before/after capacities and hits
    /// them exactly at the endpoints.
    #[test]
    fn eff_cap_bounded_and_anchored(b in 1u32..=30, a in 1u32..=30, f in 0.0f64..=1.0) {
        let q = 285.0;
        let c = eff_cap(b, a, f, q);
        let lo = cap(b.min(a), q) - 1e-9;
        let hi = cap(b.max(a), q) + 1e-9;
        prop_assert!(c >= lo && c <= hi, "{b}->{a}@{f}: {c} not in [{lo}, {hi}]");
        prop_assert!((eff_cap(b, a, 0.0, q) - cap(b, q)).abs() < 1e-6);
        prop_assert!((eff_cap(b, a, 1.0, q) - cap(a, q)).abs() < 1e-6);
    }

    /// Move time is symmetric in direction and decreases (weakly) with more
    /// partitions per machine.
    #[test]
    fn move_time_symmetry_and_partition_speedup(
        b in 1u32..=20, a in 1u32..=20, p in 1u32..=8, d in 1.0f64..10_000.0
    ) {
        let t = move_time(b, a, p, d);
        prop_assert!((t - move_time(a, b, p, d)).abs() < 1e-9);
        prop_assert!(move_time(b, a, p + 1, d) <= t + 1e-12);
        if b != a {
            prop_assert!(t > 0.0);
        }
    }

    /// Any plan the DP returns is feasible against its own load curve and
    /// starts from the requested machine count.
    #[test]
    fn planner_output_is_feasible(
        seed_loads in prop::collection::vec(10.0f64..900.0, 3..20),
        n0 in 1u32..=8,
        d in 1.0f64..20.0,
    ) {
        let planner = Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: d,
            partitions_per_node: 2,
            max_machines: 12,
        });
        if let Some(seq) = planner.best_moves(&seed_loads, n0) {
            prop_assert!(planner.verify_feasible(&seq, &seed_loads).is_ok());
            if let Some(first) = seq.moves().first() {
                prop_assert_eq!(first.from, n0);
                prop_assert_eq!(first.start, 0);
            }
            // Contiguity: the sequence must span exactly the horizon.
            prop_assert_eq!(seq.moves().last().unwrap().end, seed_loads.len() - 1);
            // Nominal capacity at the end must cover the final load.
            let last = seq.final_machines().unwrap();
            prop_assert!(cap(last, 100.0) >= *seed_loads.last().unwrap());
        }
    }

    /// A constant, comfortably served load never triggers a scale-out, and
    /// the plan ends at the minimum machine count for that load.
    #[test]
    fn planner_minimises_final_machines_on_flat_load(
        load in 10.0f64..1100.0,
        horizon in 4usize..24,
    ) {
        let planner = Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: 2.0,
            partitions_per_node: 2,
            max_machines: 12,
        });
        let n_needed = planner.machines_needed(load);
        let curve = vec![load; horizon];
        // Start exactly at the needed count: plan must end there too and
        // never scale out.
        if let Some(seq) = planner.best_moves(&curve, n_needed) {
            prop_assert_eq!(seq.final_machines(), Some(n_needed));
            prop_assert!(seq.moves().iter().all(|m| !m.is_scale_out()));
        } else {
            // Only infeasible if the load does not fit the hardware.
            prop_assert!(load > 12.0 * 100.0);
        }
    }

    /// Rebalancing a balanced plan yields a balanced plan, moves only the
    /// minimum number of slots, and transfer bookkeeping is consistent.
    #[test]
    fn rebalance_preserves_balance_and_minimality(
        machines in 1u32..=16,
        target in 1u32..=16,
        slots_per in 4usize..12,
    ) {
        let num_slots = 16 * slots_per; // divisible by any count up to 16
        let plan = SlotPlan::balanced(machines, num_slots);
        let (next, transfers) = plan.rebalance_to(target);
        prop_assert!(next.is_balanced());
        prop_assert_eq!(next.machines(), target);
        let moved: usize = transfers.iter().map(|t| t.slots.len()).sum();
        // Minimum slots to move: sum over machines of max(0, have - want).
        let want_base = num_slots / target as usize;
        let want_extra = num_slots % target as usize;
        let have_base = num_slots / machines as usize;
        let have_extra = num_slots % machines as usize;
        let mut expect = 0usize;
        for m in 0..machines {
            let have = have_base + usize::from((m as usize) < have_extra);
            let want = if m < target {
                want_base + usize::from((m as usize) < want_extra)
            } else {
                0
            };
            expect += have.saturating_sub(want);
        }
        prop_assert_eq!(moved, expect);
        for t in &transfers {
            for &s in &t.slots {
                prop_assert_eq!(plan.owner(s), t.from);
                prop_assert_eq!(next.owner(s), t.to);
            }
        }
    }

    /// Scale-out then the mirroring scale-in returns to a balanced plan of
    /// the original size (data round-trips cleanly).
    #[test]
    fn rebalance_round_trip(machines in 1u32..=12, target in 1u32..=12) {
        let plan = SlotPlan::balanced(machines, 240);
        let (mid, _) = plan.rebalance_to(target);
        let (back, _) = mid.rebalance_to(machines);
        prop_assert!(back.is_balanced());
        prop_assert_eq!(back.machines(), machines);
    }
}
