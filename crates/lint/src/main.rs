//! `pstore-lint` — the workspace's project-specific static analyzer.
//!
//! ```text
//! pstore-lint [--root DIR] [--json] [--quiet] [--list-rules]
//! ```
//!
//! Exit codes mirror `pstore-trace diff`: **0** clean, **1** findings,
//! **2** usage error. `--json` prints the stable `pstore-lint/v1`
//! document (findings, waived findings with reasons, and the workspace
//! unsafe inventory); see `docs/static_analysis.md`.

use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Args {
    root: PathBuf,
    json: bool,
    quiet: bool,
    list_rules: bool,
}

const USAGE: &str = "usage: pstore-lint [--root DIR] [--json] [--quiet] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        quiet: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let Some(dir) = it.next() else {
                    return Err("--root needs a directory argument".to_string());
                };
                args.root = PathBuf::from(dir);
            }
            "--json" => args.json = true,
            "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// One-line summaries for `--list-rules`.
const RULES: [(&str, &str); 8] = [
    (
        "SA-00",
        "waiver hygiene: every waiver names a known rule and carries a reason",
    ),
    (
        "SA-01",
        "invariant-registry coherence across core, verify, docs and tests",
    ),
    (
        "SA-02",
        "telemetry kinds/span names registered; begin/end pairing per fn body",
    ),
    (
        "SA-03",
        "determinism: no wall-clock reads or hash-ordered serialized output",
    ),
    (
        "SA-04",
        "concurrency hygiene: sync primitives only via cfg(loom) shims/vendor",
    ),
    (
        "SA-05",
        "unsafe sites carry SAFETY comments; unsafe inventory emitted",
    ),
    (
        "SA-06",
        "#[allow] of workspace-denied lints carries a justification",
    ),
    (
        "SA-07",
        "pstore-dbms sync only via the crate::sync loom shim (tests too)",
    ),
];

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("pstore-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, summary) in RULES {
            println!("{id}  {summary}");
        }
        return ExitCode::SUCCESS;
    }

    let ws = match pstore_lint::Workspace::load(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "pstore-lint: cannot load workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if ws.files.is_empty() {
        eprintln!(
            "pstore-lint: no Rust sources under {} (expected crates/, src/, vendor/)",
            args.root.display()
        );
        return ExitCode::from(2);
    }

    let report = pstore_lint::run(&ws);

    if args.json {
        println!("{}", pstore_lint::to_json(&report, &ws));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        if !args.quiet {
            let with_safety = report
                .unsafe_inventory
                .iter()
                .filter(|s| s.has_safety_comment)
                .count();
            println!(
                "pstore-lint: {} file(s) scanned, {} finding(s), {} waived, \
                 unsafe inventory: {} site(s) ({} with SAFETY comments)",
                ws.files.len(),
                report.findings.len(),
                report.waived.len(),
                report.unsafe_inventory.len(),
                with_safety,
            );
            for w in &report.waived {
                println!(
                    "  waived {} {}:{} — {}",
                    w.finding.rule, w.finding.file, w.finding.line, w.reason
                );
            }
        }
    }

    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
