//! A lightweight Rust tokenizer, sufficient for the SA-* rules.
//!
//! This is deliberately **not** a full Rust lexer: it distinguishes
//! identifiers, string/char literals, numbers, lifetimes and single-char
//! punctuation, strips comments into a separate side table (the rules
//! need comments for `// SAFETY:`, waivers and `#[allow]`
//! justifications), and records the 1-based line of every token. That is
//! enough to find macro invocations, attributes, `unsafe` sites and
//! function-body extents without an external parser dependency — the
//! same vendored-stub philosophy as the rest of the workspace.
//!
//! Handled correctly because the rules depend on it:
//! * line (`//`) and nested block (`/* */`) comments, kept with lines;
//! * cooked strings with escapes, raw strings `r#"…"#`, byte strings,
//!   char literals, and the char-vs-lifetime ambiguity (`'a'` vs `'a`);
//! * numbers are consumed opaquely (value never matters to a rule).

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `tel_event`, …).
    Ident,
    /// String literal of any flavour; `text` holds the *inner* bytes,
    /// uncooked (escape sequences left as written).
    Str,
    /// Character or byte literal (inner text, uncooked).
    Char,
    /// Numeric literal, consumed opaquely.
    Num,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
    /// Single punctuation character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (see [`TokKind`] for what is stored per kind).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (line or block) with its line extent.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment text without the `//` / `/* */` markers, untrimmed.
    pub text: String,
}

/// Token stream plus comment side table for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments that start or end on `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    }

    /// True if any token sits on `line`.
    pub fn has_code_on_line(&self, line: u32) -> bool {
        // Tokens are line-ordered; a binary search keeps repeated waiver
        // resolution cheap on big files.
        self.toks.binary_search_by_key(&line, |t| t.line).is_ok()
    }

    /// The first token line strictly greater than `line`, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        let idx = self.toks.partition_point(|t| t.line <= line);
        self.toks.get(idx).map(|t| t.line)
    }
}

/// Tokenizes `src`, splitting comments into the side table.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    let count_lines = |s: &[char]| -> u32 {
        let mut k = 0;
        for &c in s {
            if c == '\n' {
                k += 1;
            }
        }
        k
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = if depth == 0 { j - 2 } else { j };
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: b[start..end].iter().collect(),
                });
                i = j;
            }
            '"' => {
                let (text, consumed, newlines) = cooked_string(&b[i..]);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if raw_or_byte_start(&b[i..]) => {
                let (kind, text, consumed) = raw_or_byte(&b[i..]);
                let newlines = count_lines(&b[i..i + consumed]);
                out.toks.push(Tok { kind, text, line });
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime vs char literal: `'a` followed by anything but
                // a closing quote is a lifetime; `'a'`, `'\n'`, `'\''`
                // are chars.
                if i + 1 < n && (b[i + 1].is_alphanumeric() || b[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' && j == i + 2 {
                        // Single char then quote: a char literal like 'x'.
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: b[i + 1..j].iter().collect(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: b[i + 1..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                } else if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal '\n', '\'', '\u{..}'.
                    let mut j = i + 2;
                    while j < n && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: b[i + 1..j.min(n)].iter().collect(),
                        line,
                    });
                    i = (j + 1).min(n);
                } else {
                    // Bare quote (e.g. inside macro punctuation); emit as
                    // punct and move on.
                    out.toks.push(Tok {
                        kind: TokKind::Punct('\''),
                        text: "'".to_string(),
                        line,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n {
                    let d = b[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                        // `1.5` continues the number; `1..5` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Does the slice start a raw string (`r"`, `r#`), byte string (`b"`),
/// raw byte string (`br`) or byte char (`b'`)?
fn raw_or_byte_start(s: &[char]) -> bool {
    match s.first() {
        Some('r') => matches!(s.get(1), Some('"') | Some('#')),
        Some('b') => match s.get(1) {
            Some('"') | Some('\'') => true,
            Some('r') => matches!(s.get(2), Some('"') | Some('#')),
            _ => false,
        },
        _ => false,
    }
}

/// Lexes a raw/byte string or byte char starting at `s[0]`.
/// Returns `(kind, inner text, chars consumed)`.
fn raw_or_byte(s: &[char]) -> (TokKind, String, usize) {
    let mut i = 0;
    if s[i] == 'b' {
        i += 1;
        if i < s.len() && s[i] == '\'' {
            // Byte char b'x' / b'\n'.
            let mut j = i + 1;
            while j < s.len() && s[j] != '\'' {
                if s[j] == '\\' {
                    j += 1;
                }
                j += 1;
            }
            let text: String = s[i + 1..j.min(s.len())].iter().collect();
            return (TokKind::Char, text, (j + 1).min(s.len()));
        }
    }
    if i < s.len() && s[i] == 'r' {
        i += 1;
        let mut hashes = 0usize;
        while i < s.len() && s[i] == '#' {
            hashes += 1;
            i += 1;
        }
        // Opening quote.
        i += 1;
        let start = i;
        'outer: while i < s.len() {
            if s[i] == '"' {
                let mut k = 0;
                while k < hashes && i + 1 + k < s.len() && s[i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    let text: String = s[start..i].iter().collect();
                    return (TokKind::Str, text, i + 1 + hashes);
                }
            }
            i += 1;
            continue 'outer;
        }
        let text: String = s[start..].iter().collect();
        (TokKind::Str, text, s.len())
    } else {
        // b"..." cooked byte string.
        let (text, consumed, _) = cooked_string(&s[i..]);
        (TokKind::Str, text, i + consumed)
    }
}

/// Lexes a cooked string starting at the opening quote.
/// Returns `(inner text, chars consumed, newlines inside)`.
fn cooked_string(s: &[char]) -> (String, usize, u32) {
    let mut j = 1usize;
    let mut newlines = 0u32;
    while j < s.len() {
        match s[j] {
            '\\' => j += 2,
            '"' => break,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let text: String = s[1..j.min(s.len())].iter().collect();
    (text, (j + 1).min(s.len()), newlines)
}

/// Matches `toks[at..]` against a sequence of expected idents/puncts,
/// where each expectation is either `("ident", name)` or a punct char.
/// Used by rules to spot `Instant :: now`-style paths.
pub fn path_at(toks: &[Tok], at: usize, segments: &[&str]) -> bool {
    let mut i = at;
    for (k, seg) in segments.iter().enumerate() {
        if k > 0 {
            if !(i + 1 < toks.len() && toks[i].is_punct(':') && toks[i + 1].is_punct(':')) {
                return false;
            }
            i += 2;
        }
        if i >= toks.len() || !toks[i].is_ident(seg) {
            return false;
        }
        i += 1;
    }
    true
}

/// Finds the index of the matching close delimiter for the open
/// delimiter at `toks[open]` (one of `(`, `[`, `{`). Returns `None` if
/// unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks.get(open)?.kind {
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('[') => ('[', ']'),
        TokKind::Punct('{') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_out() {
        let l = lex("let x = 1; // trailing\n/* block\nspans */ let y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("trailing"));
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        assert!(l.toks.iter().any(|t| t.is_ident("y") && t.line == 3));
    }

    #[test]
    fn strings_do_not_hide_tokens() {
        let l = lex(r#"let s = "unsafe // not a comment"; unsafe {}"#);
        let unsafes: Vec<_> = l.toks.iter().filter(|t| t.is_ident("unsafe")).collect();
        assert_eq!(unsafes.len(), 1);
        assert!(l.comments.is_empty());
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("not a comment")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let r = r#\"quote \" inside\"#; let c = 'x'; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("quote \" inside")));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* nested */ still comment */ fn top() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.toks.iter().any(|t| t.is_ident("top")));
    }

    #[test]
    fn path_and_delimiter_helpers() {
        let l = lex("std::time::Instant::now()");
        assert!(path_at(&l.toks, 0, &["std", "time", "Instant", "now"]));
        let l2 = lex("f(a, (b, c), d)");
        let open = l2
            .toks
            .iter()
            .position(|t| t.is_punct('('))
            .unwrap_or_default();
        let close = matching_close(&l2.toks, open);
        assert_eq!(close, Some(l2.toks.len() - 1));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "10"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }
}
