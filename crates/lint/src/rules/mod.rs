//! The SA-* rule implementations plus shared token-level helpers.

pub mod sa01;
pub mod sa02;
pub mod sa03;
pub mod sa04;
pub mod sa05;
pub mod sa06;
pub mod sa07;

use crate::lexer::{matching_close, Tok};
use std::collections::BTreeSet;

/// True when `s` looks like a stable invariant/rule code (`SCH-01`,
/// `TEL-04`, …): an upper-case family of 2–4 letters, a dash, two
/// digits.
pub fn is_code(s: &str) -> bool {
    let Some((fam, num)) = s.split_once('-') else {
        return false;
    };
    (2..=4).contains(&fam.len())
        && fam.chars().all(|c| c.is_ascii_uppercase())
        && num.len() == 2
        && num.chars().all(|c| c.is_ascii_digit())
}

/// Extracts every literal code *and* every range shorthand
/// (`SCH-01..06` means `SCH-01` through `SCH-06`) mentioned in free
/// text. Doc comments and markdown both use the shorthand, so coverage
/// checks must expand it.
pub fn codes_in_text(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes: Vec<char> = text.chars().collect();
    let n = bytes.len();
    let mut i = 0;
    while i < n {
        if !bytes[i].is_ascii_uppercase() {
            i += 1;
            continue;
        }
        // A family run must not continue a larger identifier.
        if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && bytes[i].is_ascii_uppercase() {
            i += 1;
        }
        let fam_len = i - start;
        if !(2..=4).contains(&fam_len) || i >= n || bytes[i] != '-' {
            continue;
        }
        let fam: String = bytes[start..i].iter().collect();
        i += 1;
        let num_start = i;
        while i < n && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i - num_start != 2 {
            continue;
        }
        let lo: u32 = bytes[num_start..i]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap_or(0);
        // Optional `..NN` range suffix.
        let mut hi = lo;
        if i + 1 < n && bytes[i] == '.' && bytes[i + 1] == '.' {
            let mut j = i + 2;
            let hs = j;
            while j < n && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j - hs == 2 {
                hi = bytes[hs..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .unwrap_or(lo);
                i = j;
            }
        }
        for k in lo..=hi.max(lo) {
            out.insert(format!("{fam}-{k:02}"));
        }
    }
    out
}

/// A `#[...]` or `#![...]` attribute occurrence.
pub struct Attr {
    /// Token index of the `#`.
    pub start: usize,
    /// Token index of the closing `]`.
    pub end: usize,
    /// Line of the `#`.
    pub line: u32,
    /// Line of the closing `]`.
    pub end_line: u32,
    /// Whether the attribute is inner (`#![...]`).
    pub inner: bool,
}

/// Finds every attribute in a token stream.
pub fn attrs(toks: &[Tok]) -> Vec<Attr> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            let inner = toks.get(j).is_some_and(|t| t.is_punct('!'));
            if inner {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                if let Some(end) = matching_close(toks, j) {
                    out.push(Attr {
                        start: i,
                        end,
                        line: toks[i].line,
                        end_line: toks[end].line,
                        inner,
                    });
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// One function body: the token range of its braces and the innermost
/// nesting relationship (bodies are reported innermost-last).
pub struct FnBody {
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (the signature's start, so
    /// parameter declarations can be scoped to their function).
    pub start: usize,
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the closing `}`.
    pub close: usize,
}

/// Finds every `fn` body in a token stream. Nested functions produce
/// nested ranges; callers wanting the *innermost* body containing an
/// index should pick the smallest covering range.
pub fn fn_bodies(toks: &[Tok]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            let line = toks[i].line;
            // Scan forward to the body's `{`, skipping the signature.
            // A signature contains no top-level braces; generic bounds
            // and where clauses keep to `<>`/`()` nesting. Stop at `;`
            // (trait method declaration, no body).
            let mut j = i + 1;
            let mut found = None;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    found = Some(j);
                    break;
                }
                if toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = found {
                if let Some(close) = matching_close(toks, open) {
                    out.push(FnBody {
                        line,
                        start: i,
                        open,
                        close,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// The innermost function body containing token index `at`, if any.
pub fn innermost_fn(bodies: &[FnBody], at: usize) -> Option<&FnBody> {
    bodies
        .iter()
        .filter(|b| b.open < at && at < b.close)
        .min_by_key(|b| b.close - b.open)
}

/// A macro invocation `name!(...)` with the token range of its
/// argument list.
pub struct MacroCall {
    /// Token index of the macro name.
    pub name_idx: usize,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter.
    pub close: usize,
    /// Line of the macro name.
    pub line: u32,
}

/// Finds every `name!(…)` / `name![…]` / `name!{…}` invocation of one
/// macro name.
pub fn macro_calls(toks: &[Tok], name: &str) -> Vec<MacroCall> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident(name)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            if let Some(close) = matching_close(toks, i + 2) {
                out.push(MacroCall {
                    name_idx: i,
                    open: i + 2,
                    close,
                    line: toks[i].line,
                });
            }
        }
    }
    out
}

/// Splits an argument token range `(open, close)` exclusive of the
/// delimiters into top-level comma-separated argument ranges.
pub fn split_args(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for (i, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            crate::lexer::TokKind::Punct('(' | '[' | '{') => depth += 1,
            crate::lexer::TokKind::Punct(')' | ']' | '}') => depth -= 1,
            crate::lexer::TokKind::Punct(',') if depth == 0 => {
                if i > start {
                    out.push((start, i));
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if close > start {
        out.push((start, close));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn code_ranges_expand() {
        let codes =
            codes_in_text("checks SCH-01..04 and MOV-02; not X-1 or LOWER-aa or FOO_BAR-01");
        assert!(codes.contains("SCH-01"));
        assert!(codes.contains("SCH-04"));
        assert!(codes.contains("MOV-02"));
        assert!(!codes.contains("SCH-05"));
        assert_eq!(codes.len(), 5);
    }

    #[test]
    fn embedded_identifiers_do_not_match() {
        // `BAR-01` inside `FOO_BAR-01` must not count: it continues an
        // identifier.
        assert!(codes_in_text("FOO_BAR-01").is_empty());
        assert_eq!(codes_in_text("(TEL-04)").len(), 1);
    }

    #[test]
    fn fn_bodies_and_innermost() {
        let l = lex("fn outer() { fn inner() { x(); } y(); }");
        let bodies = fn_bodies(&l.toks);
        assert_eq!(bodies.len(), 2);
        let x_idx = l
            .toks
            .iter()
            .position(|t| t.is_ident("x"))
            .unwrap_or_default();
        let b = innermost_fn(&bodies, x_idx);
        assert!(b.is_some_and(|b| b.close - b.open < 8));
    }

    #[test]
    fn macro_calls_and_args() {
        let l = lex("tel_event!(kinds::PLANNER, \"a\" => 1, \"b\" => f(1, 2));");
        let calls = macro_calls(&l.toks, "tel_event");
        assert_eq!(calls.len(), 1);
        let args = split_args(&l.toks, calls[0].open, calls[0].close);
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn attrs_found() {
        let l = lex("#![allow(dead_code)]\n#[allow(clippy::unwrap_used)]\nfn f() {}");
        let a = attrs(&l.toks);
        assert_eq!(a.len(), 2);
        assert!(a[0].inner);
        assert!(!a[1].inner);
    }
}
