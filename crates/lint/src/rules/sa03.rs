//! SA-03 — determinism of simulation output.
//!
//! The experiment harness's byte-identical determinism contract
//! (`docs/performance.md`) dies the moment a deterministic crate reads
//! the wall clock or serialises a hash-ordered container. Over the
//! production sources of `crates/{core,dbms,sim,forecast,b2w}` (test
//! code exempt) this rule flags:
//!
//! * `Instant::now()` / `SystemTime::now()` — sim time comes from the
//!   event loop; wall time belongs to `pstore-telemetry`'s `wall_us`
//!   stamp. Telemetry-internal uses live in `crates/telemetry`, which
//!   is outside this rule's scope by construction;
//! * iteration over a `HashMap`/`HashSet`-typed binding that feeds a
//!   serialisation or printing sink (`format!`, `write!`, `println!`,
//!   `push_str`, `to_json*`, `serialize`) in the same statement or loop
//!   body, unless the statement visibly re-orders first (`sort`,
//!   `BTreeMap`/`BTreeSet` collect). This is a heuristic: it inspects
//!   declared types in the same file, so map iteration hidden behind
//!   helper returns needs a waiver-with-reason when it is genuinely
//!   order-safe.

use crate::lexer::{matching_close, path_at, Tok, TokKind};
use crate::rules::{fn_bodies, FnBody};
use crate::{Finding, Workspace};

/// Crates whose `src/` trees must stay deterministic.
pub const SCOPE: [&str; 5] = ["core", "dbms", "sim", "forecast", "b2w"];

/// Sink identifiers that indicate output being produced.
const SINKS: [&str; 9] = [
    "format",
    "write",
    "writeln",
    "print",
    "println",
    "push_str",
    "to_json_line",
    "to_json",
    "serialize",
];

/// Orderers that make hash iteration deterministic downstream.
const ORDERERS: [&str; 5] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "BTreeMap",
];

/// Runs the rule.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.files {
        if !SCOPE.contains(&f.crate_name()) || f.is_test_file {
            continue;
        }
        if !f.rel_path.contains("/src/") {
            continue;
        }
        let toks = &f.lexed.toks;

        // Wall-clock reads.
        for i in 0..toks.len() {
            if f.line_is_test(toks[i].line) {
                continue;
            }
            if (toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime"))
                && path_at(toks, i, &[&toks[i].text.clone(), "now"])
            {
                findings.push(Finding {
                    rule: "SA-03",
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "{}::now() in a deterministic crate — use sim time from the event \
                         loop, or telemetry's wall_us stamp via pstore-telemetry",
                        toks[i].text
                    ),
                });
            }
        }

        findings.extend(hash_iteration_findings(f.rel_path.as_str(), toks, f));
    }
    findings
}

/// Identifiers declared with a `HashMap`/`HashSet` type anywhere in the
/// file — `name: …HashMap<…>` in lets, fields and params, including
/// `name: &'a std::collections::HashMap<…>` forms — each with the token
/// index of its declaration so occurrences can be matched per scope.
fn hash_typed_idents(toks: &[Tok]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over the type prefix (path segments, `&`,
        // lifetimes) looking for the single `:` of a declaration. Any
        // other token (`=`, `<`, `(`, `->`…) means this is not a typed
        // binding (e.g. `HashMap::new()`, a turbofish, a return type).
        let mut j = i;
        let mut guard = 0;
        while j > 0 && guard < 16 {
            j -= 1;
            guard += 1;
            let t = &toks[j];
            if t.is_punct(':') {
                let part_of_path = toks.get(j + 1).is_some_and(|x| x.is_punct(':'))
                    || (j > 0 && toks[j - 1].is_punct(':'));
                if part_of_path {
                    continue;
                }
                if j > 0 && toks[j - 1].kind == TokKind::Ident {
                    out.push((toks[j - 1].text.clone(), j - 1));
                }
                break;
            }
            let benign = t.kind == TokKind::Ident || t.kind == TokKind::Lifetime || t.is_punct('&');
            if !benign {
                break;
            }
        }
    }
    out
}

/// Hash-container iteration feeding output sinks.
fn hash_iteration_findings(rel_path: &str, toks: &[Tok], f: &crate::SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let decls = hash_typed_idents(toks);
    if decls.is_empty() {
        return findings;
    }
    // Declarations are matched per scope: an `m: &HashMap<…>` parameter
    // of one function must not taint an unrelated `m` in another. A
    // declaration outside any function (struct field, static) stays
    // file-visible.
    let bodies = fn_bodies(toks);
    let scope_of = |at: usize| -> Option<usize> {
        bodies
            .iter()
            .filter(|b: &&FnBody| b.start <= at && at < b.close)
            .min_by_key(|b| b.close - b.start)
            .map(|b| b.open)
    };
    let is_hash_ident = |at: usize, name: &str| -> bool {
        decls
            .iter()
            .any(|(n, d)| n == name && scope_of(*d).is_none_or(|s| Some(s) == scope_of(at)))
    };
    let is_iter_method = |t: &Tok| {
        t.is_ident("iter") || t.is_ident("keys") || t.is_ident("values") || t.is_ident("drain")
    };

    // `for … in <expr-with-hash-ident> { body }` loops.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("for") {
            // Find `in`, then the loop `{`.
            let mut j = i + 1;
            let mut in_idx = None;
            while j < toks.len() && j < i + 24 {
                if toks[j].is_ident("in") {
                    in_idx = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(in_idx) = in_idx {
                let mut k = in_idx + 1;
                let mut open = None;
                let mut header_has_hash = false;
                let mut header_has_order = false;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        open = Some(k);
                        break;
                    }
                    if matches!(toks[k].kind, TokKind::Ident) {
                        if is_hash_ident(k, &toks[k].text) {
                            header_has_hash = true;
                        }
                        if ORDERERS.contains(&toks[k].text.as_str()) || toks[k].is_ident("BTreeSet")
                        {
                            header_has_order = true;
                        }
                    }
                    // Parenthesised sub-expressions in the header are
                    // fine to scan through; `{` closures in headers are
                    // rare enough to ignore.
                    k += 1;
                }
                if let Some(open) = open {
                    if header_has_hash && !header_has_order && !f.line_is_test(toks[i].line) {
                        if let Some(close) = matching_close(toks, open) {
                            let sink = toks[open..close]
                                .iter()
                                .find(|t| SINKS.contains(&t.text.as_str()));
                            if let Some(s) = sink {
                                findings.push(Finding {
                                    rule: "SA-03",
                                    file: rel_path.to_string(),
                                    line: toks[i].line,
                                    message: format!(
                                        "loop iterates a HashMap/HashSet and feeds `{}` — \
                                         hash order is nondeterministic; collect into a \
                                         BTreeMap/sorted Vec first",
                                        s.text
                                    ),
                                });
                            }
                        }
                    }
                    i = open;
                }
            }
        }
        i += 1;
    }

    // Single-statement chains: `m.iter()….collect…` with a sink in the
    // same statement.
    let mut stmt_start = 0usize;
    for idx in 0..toks.len() {
        if toks[idx].is_punct(';') || toks[idx].is_punct('{') || toks[idx].is_punct('}') {
            let stmt = &toks[stmt_start..idx];
            if let Some(first) = stmt.first() {
                if !f.line_is_test(first.line) {
                    let mut has_hash_iter = false;
                    for k in 0..stmt.len().saturating_sub(3) {
                        if is_hash_ident(stmt_start + k, &stmt[k].text)
                            && stmt[k + 1].is_punct('.')
                            && is_iter_method(&stmt[k + 2])
                        {
                            has_hash_iter = true;
                        }
                    }
                    let has_sink = stmt.iter().any(|t| SINKS.contains(&t.text.as_str()));
                    let has_order = stmt
                        .iter()
                        .any(|t| ORDERERS.contains(&t.text.as_str()) || t.is_ident("BTreeSet"));
                    if has_hash_iter && has_sink && !has_order {
                        findings.push(Finding {
                            rule: "SA-03",
                            file: rel_path.to_string(),
                            line: first.line,
                            message: "statement iterates a HashMap/HashSet directly into an \
                                      output sink — hash order is nondeterministic; sort or \
                                      collect into a BTreeMap first"
                                .to_string(),
                        });
                    }
                }
            }
            stmt_start = idx + 1;
        }
    }
    findings
}
