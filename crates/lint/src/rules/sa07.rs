//! SA-07 — sharded-engine sync hygiene for `pstore-dbms`.
//!
//! The executor-shard protocols (the CON-04 mailbox handoff, the CON-05
//! reconfig fence) are only as trustworthy as the loom models that
//! explore them, and those models only see primitives routed through
//! the crate's `cfg(loom)` shim, `crates/dbms/src/sync.rs`. SA-04
//! already bans *raw primitives* workspace-wide, but it deliberately
//! leaves gaps that are unacceptable inside the engine crate:
//!
//! * `Arc` is sanctioned by SA-04 (reference counting is not
//!   scheduling-relevant in general) — but loom's `Arc` is how the
//!   model tracks cross-thread object reachability, so the engine must
//!   take it from the shim;
//! * `std::thread` items other than `spawn`/`Builder`/`scope`
//!   (`sleep`, `yield_now`, `park`, …) pass SA-04 — but a bare
//!   `std::thread::yield_now` in a spin loop compiles under `cfg(loom)`
//!   and silently hides the yield from the scheduler model;
//! * test code is exempt from SA-04 — but the dbms tests include the
//!   loom models themselves and integration tests that drive the
//!   threaded backend, so they route through the shim too.
//!
//! Hence this rule: in `crates/dbms/`, **any** `std::sync` or
//! `std::thread` path — import or inline, production or test — outside
//! the sync shim file is a finding. The remedy is `crate::sync::…`
//! (or `pstore_dbms::sync::…` from integration tests); genuinely
//! loom-irrelevant uses take the standard waiver:
//! `// pstore-lint: allow(SA-07): <why loom never needs to see this>`.

use crate::{Finding, Workspace};

/// Runs the rule.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.files {
        if f.crate_name() != "dbms" || f.is_sync_shim() {
            continue;
        }
        let toks = &f.lexed.toks;
        for i in 0..toks.len() {
            // `std :: {sync, thread}` in any position (use declaration,
            // inline path, qualified call).
            if !(toks[i].is_ident("std")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            let Some(module) = toks
                .get(i + 3)
                .filter(|t| t.is_ident("sync") || t.is_ident("thread"))
            else {
                continue;
            };
            // Name the first item after the module for the message
            // (`std::sync::Arc` → `std::sync::Arc`); imports of the
            // bare module (`use std::thread;`) name just the module.
            let path = toks
                .get(i + 4)
                .zip(toks.get(i + 5))
                .filter(|(a, b)| a.is_punct(':') && b.is_punct(':'))
                .and_then(|_| toks.get(i + 6))
                .map_or_else(
                    || format!("std::{}", module.text),
                    |t| format!("std::{}::{}", module.text, t.text),
                );
            findings.push(Finding {
                rule: "SA-07",
                file: f.rel_path.clone(),
                line: toks[i].line,
                message: format!(
                    "{path} inside pstore-dbms — the engine's cross-thread protocols are \
                     loom-modelled, so take it from the crate::sync shim \
                     (crates/dbms/src/sync.rs) instead; if loom genuinely never needs to \
                     see this, waive with `pstore-lint: allow(SA-07): <reason>`"
                ),
            });
        }
    }
    findings
}
