//! SA-01 — invariant-registry coherence.
//!
//! `crates/core/src/invariant.rs` is the single source of truth for
//! invariant ids. For every code registered there (`SCH-01`, `TEL-04`,
//! …) this rule requires, **in both directions**:
//!
//! * a checker reference in `crates/verify/src/` — the code, its range
//!   shorthand (`SCH-01..06`), or the `InvariantId` variant name;
//! * a section in `docs/invariants.md`;
//! * at least one test mention (a `tests/` file or `#[cfg(test)]` code)
//!   anywhere in the workspace;
//! * and, reversed, every code `docs/invariants.md` mentions for a
//!   *registered family* must exist in the registry — dead doc sections
//!   fail too. (Unknown families are ignored so the doc can discuss
//!   other systems' rule ids.)

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::rules::{codes_in_text, is_code};
use crate::{Finding, Workspace};

/// Relative path of the registry file.
pub const REGISTRY: &str = "crates/core/src/invariant.rs";
/// Relative path prefix of the verifier sources.
const VERIFY_PREFIX: &str = "crates/verify/src/";
/// Relative path of the invariant catalogue document.
const DOC: &str = "docs/invariants.md";

/// Extracts `code -> variant name` from the registry's `code()` match
/// arms (`InvariantId::ScheduleRoundCount => "SCH-01"`).
fn registry_codes(ws: &Workspace) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Some(file) = ws.file(REGISTRY) else {
        return out;
    };
    let t = &file.lexed.toks;
    for i in 0..t.len() {
        if t[i].is_ident("InvariantId")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.kind == TokKind::Ident)
            && t.get(i + 4).is_some_and(|x| x.is_punct('='))
            && t.get(i + 5).is_some_and(|x| x.is_punct('>'))
            && t.get(i + 6).is_some_and(|x| x.kind == TokKind::Str)
        {
            let code = t[i + 6].text.clone();
            if is_code(&code) {
                // `code()` comes before `paper_ref()`; keep the first
                // string seen for a variant, which is the code.
                out.entry(code).or_insert_with(|| t[i + 3].text.clone());
            }
        }
    }
    out
}

/// Runs the rule.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registry = registry_codes(ws);
    if registry.is_empty() {
        // No registry file in this tree (e.g. a fixture for another
        // rule): nothing to check.
        return findings;
    }
    let registry_line = |code: &str| -> u32 {
        ws.file(REGISTRY)
            .and_then(|f| {
                f.lexed
                    .toks
                    .iter()
                    .find(|t| t.kind == TokKind::Str && t.text == *code)
                    .map(|t| t.line)
            })
            .unwrap_or(0)
    };

    // Gather the three cross-reference corpora.
    let mut verify_text = String::new();
    let mut test_text = String::new();
    for f in &ws.files {
        if f.rel_path.starts_with(VERIFY_PREFIX) {
            verify_text.push_str(&f.text);
            verify_text.push('\n');
        }
        if f.is_test_file {
            test_text.push_str(&f.text);
            test_text.push('\n');
        } else if let Some(line) = f.test_start_line {
            // Only the `#[cfg(test)]` tail of a src file is test text.
            for (idx, l) in f.text.lines().enumerate() {
                #[allow(clippy::cast_possible_truncation)] // file line counts fit u32
                let ln = (idx + 1) as u32;
                if ln >= line {
                    test_text.push_str(l);
                    test_text.push('\n');
                }
            }
        }
    }
    let doc_text = ws.docs.get(DOC).cloned().unwrap_or_default();

    let verify_codes = codes_in_text(&verify_text);
    let doc_codes = codes_in_text(&doc_text);
    let test_codes = codes_in_text(&test_text);

    for (code, variant) in &registry {
        let line = registry_line(code);
        if !verify_codes.contains(code) && !verify_text.contains(variant.as_str()) {
            findings.push(Finding {
                rule: "SA-01",
                file: REGISTRY.to_string(),
                line,
                message: format!(
                    "invariant {code} ({variant}) has no checker reference in {VERIFY_PREFIX} \
                     — mention the code or the variant where it is verified"
                ),
            });
        }
        if !doc_codes.contains(code) {
            findings.push(Finding {
                rule: "SA-01",
                file: REGISTRY.to_string(),
                line,
                message: format!(
                    "invariant {code} ({variant}) has no section in {DOC} — document it in the \
                     family's catalogue table"
                ),
            });
        }
        if !test_codes.contains(code) && !test_text.contains(variant.as_str()) {
            findings.push(Finding {
                rule: "SA-01",
                file: REGISTRY.to_string(),
                line,
                message: format!(
                    "invariant {code} ({variant}) is never mentioned in a test \
                     (tests/ files or #[cfg(test)] code) — reference it from the test \
                     that exercises it"
                ),
            });
        }
    }

    // Reverse direction: dead codes in the doc for registered families.
    let families: std::collections::BTreeSet<&str> = registry
        .keys()
        .filter_map(|c| c.split('-').next())
        .collect();
    for code in &doc_codes {
        let fam = code.split('-').next().unwrap_or("");
        if families.contains(fam) && !registry.contains_key(code) {
            let line = doc_text
                .lines()
                .position(|l| l.contains(code.as_str()))
                .map_or(0, |i| u32::try_from(i + 1).unwrap_or(0));
            findings.push(Finding {
                rule: "SA-01",
                file: DOC.to_string(),
                line,
                message: format!(
                    "{DOC} mentions {code} but the registry ({REGISTRY}) does not define it — \
                     remove the dead section or register the invariant"
                ),
            });
        }
    }
    findings
}
