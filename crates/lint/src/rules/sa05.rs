//! SA-05 — `unsafe` discipline and the workspace unsafe inventory.
//!
//! Every `unsafe` site — blocks, `unsafe fn`, `unsafe impl`, `unsafe
//! trait`, **vendor and test code included** — must carry a `SAFETY:`
//! comment on the same line or in the contiguous comment run directly
//! above it, stating why the obligation holds. The rule also emits a
//! complete inventory of the workspace's unsafe sites (the `pstore-lint
//! --json` document carries it), so growth of the unsafe surface is
//! reviewable PR over PR.

use crate::{Finding, UnsafeSite, Workspace};

/// Runs the rule. Returns findings plus the full inventory.
pub fn check(ws: &Workspace) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    for f in &ws.files {
        let toks = &f.lexed.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("unsafe") {
                continue;
            }
            let kind = match toks.get(i + 1) {
                Some(t) if t.is_punct('{') => "block",
                Some(t) if t.is_ident("fn") => "fn",
                Some(t) if t.is_ident("impl") => "impl",
                Some(t) if t.is_ident("trait") => "trait",
                // `unsafe` inside an attribute (`#[allow(unsafe_code)]`
                // never lexes as bare `unsafe`) or a pathological
                // position; record it as a block conservatively.
                _ => "block",
            };
            let line = toks[i].line;
            let has_safety = has_safety_comment(f, line);
            inventory.push(UnsafeSite {
                file: f.rel_path.clone(),
                line,
                kind,
                has_safety_comment: has_safety,
            });
            if !has_safety {
                findings.push(Finding {
                    rule: "SA-05",
                    file: f.rel_path.clone(),
                    line,
                    message: format!(
                        "unsafe {kind} without a SAFETY comment — state the proof obligation \
                         in `// SAFETY: …` directly above the site"
                    ),
                });
            }
        }
    }
    (findings, inventory)
}

/// A `SAFETY:` comment counts when it sits on the site's line or in the
/// unbroken comment run directly above it.
fn has_safety_comment(f: &crate::SourceFile, line: u32) -> bool {
    let mentions = |l: u32| {
        f.lexed
            .comments_on_line(l)
            .any(|c| c.text.contains("SAFETY:"))
    };
    if mentions(line) {
        return true;
    }
    // Walk upward while the lines above hold comments (doc or plain),
    // stopping at the first line with neither comment nor blank
    // continuation of the run.
    let mut l = line;
    while l > 1 {
        l -= 1;
        let has_comment = f.lexed.comments_on_line(l).next().is_some();
        if !has_comment {
            break;
        }
        if mentions(l) {
            return true;
        }
    }
    false
}
