//! SA-06 — `#[allow]` of a workspace-denied lint needs a justification.
//!
//! The workspace denies a set of clippy lints (`[workspace.lints]` in
//! the root `Cargo.toml`: `unwrap_used`, `float_cmp`, the lossy casts,
//! …). A targeted `#[allow(...)]` of one of them is legitimate — but
//! only as a *documented* decision. This rule requires a comment
//! adjacent to every such attribute: trailing on the attribute's line,
//! on the line directly above, or on the line directly below (the
//! house style puts multi-clause justifications under the attribute).
//! Vendored stubs are exempt (they carry their own file-level policy).

use crate::rules::attrs;
use crate::{Finding, Workspace};

/// Runs the rule.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.files {
        if f.crate_name() == "vendor" {
            continue;
        }
        let toks = &f.lexed.toks;
        for a in attrs(toks) {
            // Only `allow(...)` attributes.
            let offset = if a.inner { 3 } else { 2 };
            let name_idx = a.start + offset;
            if !toks.get(name_idx).is_some_and(|t| t.is_ident("allow")) {
                continue;
            }
            // Which denied lints does it name?
            let mut denied: Vec<&str> = Vec::new();
            for t in &toks[name_idx..=a.end] {
                if let Some(d) = ws.denied_lints.iter().find(|d| t.is_ident(d.as_str())) {
                    if !denied.contains(&d.as_str()) {
                        denied.push(d.as_str());
                    }
                }
            }
            if denied.is_empty() {
                continue;
            }
            // Look for any comment adjacent to the attribute.
            let has_comment = (a.line..=a.end_line)
                .chain([a.line.saturating_sub(1), a.end_line + 1])
                .any(|l| {
                    l >= 1
                        && f.lexed
                            .comments_on_line(l)
                            .any(|c| !c.text.trim().is_empty())
                });
            if !has_comment {
                findings.push(Finding {
                    rule: "SA-06",
                    file: f.rel_path.clone(),
                    line: a.line,
                    message: format!(
                        "#[allow({})] overrides a workspace-denied lint without a \
                         justification — add an adjacent comment saying why it is sound",
                        denied.join(", ")
                    ),
                });
            }
        }
    }
    findings
}
