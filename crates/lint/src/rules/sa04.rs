//! SA-04 — concurrency hygiene for the shard-per-core engine.
//!
//! The CON-01..03 story works because every synchronisation primitive
//! the pool touches can be swapped to `loom` types under `cfg(loom)`
//! and model-checked exhaustively. Ad-hoc `std::sync` usage breaks that
//! guarantee silently: the primitive exists in release builds but not
//! in the model. So, outside `vendor/` and designated sync shims, this
//! rule flags in production sources:
//!
//! * `std::thread::spawn` (and bare `thread::spawn`) — threads must
//!   come from the vendored pool or a shimmed `thread::scope`;
//! * imports or paths naming raw `std::sync` primitives (`Mutex`,
//!   `RwLock`, `Condvar`, `Barrier`, `Once`, `OnceLock`, `mpsc`, the
//!   atomics) — route them through a `cfg(loom)` sync shim so future
//!   loom models cover them. `Arc` is allowed: it is reference
//!   counting, not scheduling-relevant synchronisation.
//!
//! A sync shim announces itself with a `pstore-lint: sync-shim` marker
//! comment **and** must actually contain `cfg(loom)`; see
//! `vendor/rayon/src/lib.rs` (`mod sync`) and
//! `crates/telemetry/src/sync.rs`. Test code is exempt.

use crate::lexer::TokKind;
use crate::{Finding, Workspace};

/// `std::sync` items considered raw synchronisation primitives.
const PRIMITIVES: [&str; 14] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "OnceCell",
    "mpsc",
    "atomic",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
];

/// Runs the rule.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.files {
        if f.crate_name() == "vendor" || f.is_test_file || f.is_sync_shim() {
            continue;
        }
        // Only crates/*/src and the root src/ are in scope; bench bins
        // and examples drive experiments, but they still ride the same
        // engine, so they are held to the same rule.
        if !(f.rel_path.starts_with("crates/") || f.rel_path.starts_with("src/")) {
            continue;
        }
        let toks = &f.lexed.toks;
        for i in 0..toks.len() {
            if f.line_is_test(toks[i].line) {
                continue;
            }
            // Thread creation in any path form: `thread::{spawn,
            // Builder, scope}`. A preceding `:` means the path already
            // matched one token earlier (`std::thread::…`) or goes
            // through a shim re-export (`sync::thread::…`), which is
            // sanctioned.
            if toks[i].is_ident("thread")
                && !(i > 0 && toks[i - 1].is_punct(':'))
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| {
                    t.is_ident("spawn") || t.is_ident("Builder") || t.is_ident("scope")
                })
            {
                // Re-anchor bare `thread::…` to `std::thread::…` when
                // the two tokens before are `std ::`.
                let via_std = i >= 3
                    && toks[i - 3].is_ident("std")
                    && toks[i - 2].is_punct(':')
                    && toks[i - 1].is_punct(':');
                let _ = via_std; // both forms are flagged identically
                findings.push(Finding {
                    rule: "SA-04",
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "thread::{} outside the vendored pool — spawn through a cfg(loom) \
                         sync shim (vendor/rayon `mod sync`) so loom models can explore \
                         the interleavings",
                        toks[i + 3].text
                    ),
                });
            }
            // `std :: thread :: {spawn, Builder, scope}` full paths.
            if toks[i].is_ident("std")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("thread"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 5).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 6).is_some_and(|t| {
                    t.is_ident("spawn") || t.is_ident("Builder") || t.is_ident("scope")
                })
            {
                findings.push(Finding {
                    rule: "SA-04",
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "std::thread::{} outside the vendored pool — spawn through a \
                         cfg(loom) sync shim (vendor/rayon `mod sync`) so loom models can \
                         explore the interleavings",
                        toks[i + 6].text
                    ),
                });
            }
            // `std :: sync :: …` — scan the rest of the use/path for
            // primitive names.
            if toks[i].is_ident("std")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("sync"))
            {
                let mut j = i + 4;
                let mut named: Vec<&str> = Vec::new();
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct(';') || t.is_punct('=') || t.line > toks[i].line + 3 {
                        break;
                    }
                    if t.kind == TokKind::Ident {
                        if let Some(p) = PRIMITIVES.iter().find(|p| t.is_ident(p)) {
                            if !named.contains(p) {
                                named.push(p);
                            }
                        }
                    }
                    j += 1;
                }
                if !named.is_empty() {
                    findings.push(Finding {
                        rule: "SA-04",
                        file: f.rel_path.clone(),
                        line: toks[i].line,
                        message: format!(
                            "raw std::sync primitive{} ({}) outside a cfg(loom) sync shim — \
                             route through a shim module (marker `pstore-lint: sync-shim`) \
                             so the loom models cover {}",
                            if named.len() > 1 { "s" } else { "" },
                            named.join(", "),
                            if named.len() > 1 { "them" } else { "it" },
                        ),
                    });
                }
            }
        }
    }
    findings
}
