//! SA-02 — telemetry discipline.
//!
//! The JSONL trace format is a contract (`docs/observability.md`): kind
//! strings and span names must stay stable. This rule enforces, over
//! all production sources:
//!
//! * every `tel_event!(KIND, …)` kind resolves to a constant of the
//!   `kinds` registry in `crates/telemetry/src/event.rs` (a
//!   `kinds::NAME` path or a string literal equal to a registered
//!   value);
//! * every `tel_span!` / `begin_span` / `end_span` name resolves to the
//!   `span_names` registry (or a `kinds` constant such as
//!   `SPAN_RECONFIG`);
//! * manual `begin_span` / `end_span` calls pair up *per function
//!   body*: a begin without an end in the same function (or vice versa)
//!   is flagged — spans that intentionally cross function boundaries
//!   (e.g. a reconfiguration spanning a migration's lifetime) must
//!   carry a waiver explaining why, and TEL-01/02 then verify the
//!   pairing dynamically.
//!
//! Test code is exempt: ad-hoc kinds in tests are part of testing the
//! machinery itself.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::rules::{fn_bodies, innermost_fn, macro_calls, split_args, FnBody};
use crate::{Finding, Workspace};

/// Relative path of the stable-kind registry.
pub const REGISTRY: &str = "crates/telemetry/src/event.rs";

/// Extracts `CONST name -> string value` pairs from one `mod <name>`
/// block of the registry file.
fn registry_consts(ws: &Workspace, module: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Some(file) = ws.file(REGISTRY) else {
        return out;
    };
    let t = &file.lexed.toks;
    // Find `mod <module> {` and its extent.
    let mut range = None;
    for i in 0..t.len() {
        if t[i].is_ident("mod")
            && t.get(i + 1).is_some_and(|x| x.is_ident(module))
            && t.get(i + 2).is_some_and(|x| x.is_punct('{'))
        {
            if let Some(close) = crate::lexer::matching_close(t, i + 2) {
                range = Some((i + 2, close));
            }
            break;
        }
    }
    let Some((open, close)) = range else {
        return out;
    };
    let mut i = open;
    while i < close {
        if t[i].is_ident("const") {
            if let Some(name) = t.get(i + 1).filter(|x| x.kind == TokKind::Ident) {
                // Scan to `=` then expect the string value.
                let mut j = i + 2;
                while j < close && !t[j].is_punct('=') && !t[j].is_punct(';') {
                    j += 1;
                }
                if t.get(j).is_some_and(|x| x.is_punct('='))
                    && t.get(j + 1).is_some_and(|x| x.kind == TokKind::Str)
                {
                    out.insert(name.text.clone(), t[j + 1].text.clone());
                }
            }
        }
        i += 1;
    }
    out
}

/// How one kind/name argument resolved.
enum Resolved {
    /// A registered constant or literal; carries the string value.
    Known(String),
    /// A `kinds::X` / `span_names::X` path whose constant is not
    /// registered.
    UnknownConst(String, u32),
    /// A string literal not present in the registry.
    UnknownLiteral(String, u32),
    /// Dynamic expression — not statically resolvable, skipped.
    Dynamic,
}

/// Resolves one argument token range as a kind/span name.
fn resolve(
    toks: &[Tok],
    (start, end): (usize, usize),
    kinds: &BTreeMap<String, String>,
    spans: &BTreeMap<String, String>,
    allow_spans: bool,
) -> Resolved {
    let args = &toks[start..end];
    // `…kinds::CONST` or `…span_names::CONST` path: use the last two
    // meaningful segments.
    for k in 0..args.len() {
        let is_reg_mod = args[k].is_ident("kinds") || args[k].is_ident("span_names");
        if is_reg_mod
            && args.get(k + 1).is_some_and(|x| x.is_punct(':'))
            && args.get(k + 2).is_some_and(|x| x.is_punct(':'))
            && args.get(k + 3).is_some_and(|x| x.kind == TokKind::Ident)
        {
            let name = &args[k + 3].text;
            let table = if args[k].is_ident("kinds") {
                kinds
            } else {
                spans
            };
            return match table.get(name) {
                Some(v) => Resolved::Known(v.clone()),
                None => {
                    Resolved::UnknownConst(format!("{}::{}", args[k].text, name), args[k + 3].line)
                }
            };
        }
    }
    if args.len() == 1 && args[0].kind == TokKind::Str {
        let v = &args[0].text;
        let known_kind = kinds.values().any(|x| x == v);
        let known_span = spans.values().any(|x| x == v);
        if known_kind || (allow_spans && known_span) {
            return Resolved::Known(v.clone());
        }
        return Resolved::UnknownLiteral(v.clone(), args[0].line);
    }
    Resolved::Dynamic
}

/// A resolved `begin_span` / `end_span` call site.
struct SpanCall {
    name: String,
    tok_idx: usize,
    line: u32,
    is_begin: bool,
}

/// Runs the rule.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let kinds = registry_consts(ws, "kinds");
    let spans = registry_consts(ws, "span_names");
    if kinds.is_empty() {
        // No registry (fixture tree for another rule): nothing to do.
        return findings;
    }

    for f in &ws.files {
        // Only production sources in crates/ and src/; skip vendor, the
        // registry itself, and whole test files.
        if f.crate_name() == "vendor" || f.is_test_file || f.rel_path == REGISTRY {
            continue;
        }
        let toks = &f.lexed.toks;
        let bodies = fn_bodies(toks);

        // tel_event! kinds.
        for call in macro_calls(toks, "tel_event") {
            if f.line_is_test(call.line) {
                continue;
            }
            let args = split_args(toks, call.open, call.close);
            let Some(first) = args.first() else { continue };
            match resolve(toks, *first, &kinds, &spans, false) {
                Resolved::UnknownConst(name, line) => findings.push(Finding {
                    rule: "SA-02",
                    file: f.rel_path.clone(),
                    line,
                    message: format!(
                        "tel_event! kind `{name}` is not a constant of the stable-kind \
                         registry ({REGISTRY}) — register it in `mod kinds`"
                    ),
                }),
                Resolved::UnknownLiteral(v, line) => findings.push(Finding {
                    rule: "SA-02",
                    file: f.rel_path.clone(),
                    line,
                    message: format!(
                        "tel_event! kind \"{v}\" does not match any registered kind value \
                         in {REGISTRY} — add it to `mod kinds` and use the constant"
                    ),
                }),
                Resolved::Known(_) | Resolved::Dynamic => {}
            }
        }

        // tel_span! names (second argument; the first is the guard).
        for call in macro_calls(toks, "tel_span") {
            if f.line_is_test(call.line) {
                continue;
            }
            let args = split_args(toks, call.open, call.close);
            let Some(second) = args.get(1) else { continue };
            match resolve(toks, *second, &kinds, &spans, true) {
                Resolved::UnknownConst(name, line) | Resolved::UnknownLiteral(name, line) => {
                    findings.push(Finding {
                        rule: "SA-02",
                        file: f.rel_path.clone(),
                        line,
                        message: format!(
                            "tel_span! name `{name}` is not in the span-name registry \
                             (`mod span_names` in {REGISTRY}) — register the stable name"
                        ),
                    });
                }
                Resolved::Known(_) | Resolved::Dynamic => {}
            }
        }

        // Manual begin_span / end_span: registration + per-fn pairing.
        let mut calls: Vec<SpanCall> = Vec::new();
        for (idx, tok) in toks.iter().enumerate() {
            let is_begin = tok.is_ident("begin_span");
            let is_end = tok.is_ident("end_span");
            if !is_begin && !is_end {
                continue;
            }
            if !toks.get(idx + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if f.line_is_test(tok.line) {
                continue;
            }
            let Some(close) = crate::lexer::matching_close(toks, idx + 1) else {
                continue;
            };
            let args = split_args(toks, idx + 1, close);
            let Some(first) = args.first() else { continue };
            match resolve(toks, *first, &kinds, &spans, true) {
                Resolved::Known(v) => calls.push(SpanCall {
                    name: v,
                    tok_idx: idx,
                    line: tok.line,
                    is_begin,
                }),
                Resolved::UnknownConst(name, line) | Resolved::UnknownLiteral(name, line) => {
                    findings.push(Finding {
                        rule: "SA-02",
                        file: f.rel_path.clone(),
                        line,
                        message: format!(
                            "{} span name `{name}` is not in the span-name registry \
                             (`mod span_names` in {REGISTRY}) — register the stable name",
                            if is_begin { "begin_span" } else { "end_span" },
                        ),
                    });
                }
                Resolved::Dynamic => {}
            }
        }
        findings.extend(pairing_findings(&f.rel_path, &bodies, &calls));
    }
    findings
}

/// Per-function begin/end multiset pairing over resolved span calls.
fn pairing_findings(rel_path: &str, bodies: &[FnBody], calls: &[SpanCall]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Group call indices by innermost function body (keyed by open
    // token index; calls outside any fn body share the `usize::MAX`
    // bucket).
    let mut groups: BTreeMap<usize, Vec<&SpanCall>> = BTreeMap::new();
    for c in calls {
        let key = innermost_fn(bodies, c.tok_idx).map_or(usize::MAX, |b| b.open);
        groups.entry(key).or_default().push(c);
    }
    for group in groups.values() {
        let mut names: Vec<&str> = group.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            let begins: Vec<&&SpanCall> = group
                .iter()
                .filter(|c| c.is_begin && c.name == name)
                .collect();
            let ends: Vec<&&SpanCall> = group
                .iter()
                .filter(|c| !c.is_begin && c.name == name)
                .collect();
            if begins.len() == ends.len() {
                continue;
            }
            let (kind, witness) = if begins.len() > ends.len() {
                ("begin_span", begins.last())
            } else {
                ("end_span", ends.last())
            };
            if let Some(w) = witness {
                findings.push(Finding {
                    rule: "SA-02",
                    file: rel_path.to_string(),
                    line: w.line,
                    message: format!(
                        "span \"{name}\" has {} begin_span but {} end_span in this function \
                         body ({kind} unmatched) — pair them, or waive if the span \
                         intentionally crosses function boundaries",
                        begins.len(),
                        ends.len(),
                    ),
                });
            }
        }
    }
    findings
}
