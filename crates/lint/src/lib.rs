//! `pstore-lint`: project-specific static analysis for the workspace.
//!
//! The dynamic correctness layers (the `pstore-verify` sweep, the loom
//! models, the trace-diff gate) catch violations when a run *executes*
//! them. This crate is the source-level complement: it enforces the
//! conventions those layers depend on before any schedule can exhibit a
//! violation, in the spirit of predictive analyses like IsoPredict.
//!
//! Seven rules with stable ids (see `docs/static_analysis.md` for the
//! full catalogue, waiver syntax and JSON schema):
//!
//! * **SA-01** — invariant-registry coherence: every `InvariantId` code
//!   must have a checker reference in `pstore-verify`, a section in
//!   `docs/invariants.md` and a test mention; dead doc codes fail too.
//! * **SA-02** — telemetry discipline: `tel_event!` / `tel_span!` /
//!   `begin_span` / `end_span` kind and span names must be registered in
//!   `crates/telemetry/src/event.rs`, and manual begin/end calls must
//!   pair up per function body.
//! * **SA-03** — determinism: no wall-clock reads and no `HashMap` /
//!   `HashSet` iteration feeding serialized or printed output in the
//!   deterministic crates (`core`, `dbms`, `sim`, `forecast`, `b2w`).
//! * **SA-04** — concurrency hygiene: no `std::thread::spawn` and no raw
//!   `std::sync` primitives outside `vendor/` and `cfg(loom)` sync
//!   shims, so every interleaving stays loom-modellable.
//! * **SA-05** — every `unsafe` site carries a `// SAFETY:` comment; the
//!   run also emits a workspace unsafe inventory.
//! * **SA-06** — every `#[allow(...)]` of a workspace-denied lint
//!   carries a justification comment.
//! * **SA-07** — sharded-engine sync hygiene: inside `pstore-dbms` every
//!   `std::sync` / `std::thread` path (tests included, `Arc` included)
//!   goes through the loom-modellable `crate::sync` shim.
//!
//! Findings can be waived inline with a comment naming the rule and a
//! mandatory reason — `pstore-lint: allow(SA-03): documented why` — on
//! (or directly above) the offending line; a malformed waiver is itself
//! reported under the meta-rule **SA-00**.

pub mod lexer;
pub mod rules;
mod waiver;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::Lexed;
pub use waiver::Waiver;

/// Stable rule identifiers. `SA-00` is the meta-rule for malformed
/// waivers.
pub const RULE_IDS: [&str; 8] = [
    "SA-00", "SA-01", "SA-02", "SA-03", "SA-04", "SA-05", "SA-06", "SA-07",
];

/// True if `id` names a known rule (`SA-00` … `SA-07`).
pub fn is_known_rule(id: &str) -> bool {
    RULE_IDS.contains(&id)
}

/// One diagnostic: a rule fired at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id, e.g. `"SA-03"`.
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line, or 0 for whole-file/workspace findings.
    pub line: u32,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// One entry of the workspace unsafe inventory (every `unsafe` site,
/// vendor included, with or without a `SAFETY:` comment).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Site kind: `block`, `fn`, `impl` or `trait`.
    pub kind: &'static str,
    /// Whether a `SAFETY:` comment was found adjacent to the site.
    pub has_safety_comment: bool,
}

/// One source file loaded into the workspace model.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw file contents.
    pub text: String,
    /// Token stream + comments.
    pub lexed: Lexed,
    /// True when the file lives under a `tests/` directory.
    pub is_test_file: bool,
    /// Line of the first `#[cfg(test)]` in the file, if any. Code at or
    /// after this line is treated as test text by rules that exempt
    /// tests.
    pub test_start_line: Option<u32>,
    /// Parsed inline waivers.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// True when `line` falls in test code (a `tests/` file, or at/after
    /// the first `#[cfg(test)]` of a src file).
    pub fn line_is_test(&self, line: u32) -> bool {
        self.is_test_file || self.test_start_line.is_some_and(|t| line >= t)
    }

    /// The crate this file belongs to (`crates/<name>/…` → `<name>`),
    /// `"vendor"` for vendored stubs, `""` for the root package.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or(""),
            Some("vendor") => "vendor",
            _ => "",
        }
    }

    /// True when the file declares itself a loom sync shim: it carries a
    /// `pstore-lint: sync-shim` marker comment *and* really switches on
    /// `cfg(loom)`. SA-04 exempts such files — they are the one sanctioned
    /// doorway to `std::sync`.
    pub fn is_sync_shim(&self) -> bool {
        self.lexed
            .comments
            .iter()
            .any(|c| c.text.contains("pstore-lint: sync-shim"))
            && self.text.contains("cfg(loom)")
    }
}

/// The loaded workspace: all Rust sources plus the documents the rules
/// cross-check.
pub struct Workspace {
    /// Absolute root the paths are relative to.
    pub root: PathBuf,
    /// All `.rs` files, sorted by path for deterministic output.
    pub files: Vec<SourceFile>,
    /// Markdown documents by relative path (currently
    /// `docs/invariants.md`).
    pub docs: BTreeMap<String, String>,
    /// Clippy lints denied in `[workspace.lints.clippy]` of the root
    /// `Cargo.toml` (falls back to the committed policy when absent, so
    /// fixture trees stay small).
    pub denied_lints: Vec<String>,
}

/// Directories scanned for Rust sources, relative to the root.
const SCAN_DIRS: [&str; 4] = ["crates", "vendor", "src", "examples"];

/// Path prefixes never scanned (deliberate-violation fixtures, build
/// output).
fn is_excluded(rel: &str) -> bool {
    rel.starts_with("crates/lint/tests/fixtures/") || rel.starts_with("target/")
}

impl Workspace {
    /// Loads every Rust source under the scan roots plus the documents
    /// and lint policy the rules need.
    ///
    /// # Errors
    /// Propagates I/O errors other than missing scan directories (a
    /// fixture tree may only contain `crates/`).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        for dir in SCAN_DIRS {
            let d = root.join(dir);
            if d.is_dir() {
                collect_rs(&d, &mut paths)?;
            }
        }
        let mut rels: Vec<String> = paths
            .iter()
            .filter_map(|p| {
                p.strip_prefix(root)
                    .ok()
                    .map(|r| r.to_string_lossy().replace('\\', "/"))
            })
            .filter(|r| !is_excluded(r))
            .collect();
        rels.sort();
        rels.dedup();

        let mut files = Vec::with_capacity(rels.len());
        for rel in rels {
            let text = fs::read_to_string(root.join(&rel))?;
            files.push(load_source(rel, text));
        }

        let mut docs = BTreeMap::new();
        for doc in ["docs/invariants.md", "docs/static_analysis.md"] {
            if let Ok(text) = fs::read_to_string(root.join(doc)) {
                docs.insert(doc.to_string(), text);
            }
        }

        let denied_lints = fs::read_to_string(root.join("Cargo.toml"))
            .ok()
            .map(|t| parse_denied_lints(&t))
            .filter(|v| !v.is_empty())
            .unwrap_or_else(default_denied_lints);

        Ok(Workspace {
            // Absolute so the JSON report is unambiguous wherever the
            // binary was invoked from.
            root: root.canonicalize().unwrap_or_else(|_| root.to_path_buf()),
            files,
            docs,
            denied_lints,
        })
    }

    /// Looks up a loaded file by relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel)
    }
}

/// Builds the in-memory model for one source file.
fn load_source(rel_path: String, text: String) -> SourceFile {
    let lexed = lexer::lex(&text);
    let is_test_file = rel_path.split('/').any(|seg| seg == "tests");
    let test_start_line = find_cfg_test(&lexed);
    let waivers = waiver::parse_waivers(&lexed);
    SourceFile {
        rel_path,
        text,
        lexed,
        is_test_file,
        test_start_line,
        waivers,
    }
}

/// Line of the first `#[cfg(test)]` attribute, if any.
fn find_cfg_test(lexed: &Lexed) -> Option<u32> {
    let t = &lexed.toks;
    for i in 0..t.len() {
        if t[i].is_punct('#')
            && t.get(i + 1).is_some_and(|x| x.is_punct('['))
            && t.get(i + 2).is_some_and(|x| x.is_ident("cfg"))
            && t.get(i + 3).is_some_and(|x| x.is_punct('('))
            && t.get(i + 4).is_some_and(|x| x.is_ident("test"))
            && t.get(i + 5).is_some_and(|x| x.is_punct(')'))
        {
            return Some(t[i].line);
        }
    }
    None
}

/// Walks `dir` recursively collecting `.rs` files.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Parses `[workspace.lints.clippy]` entries set to `"deny"` from the
/// root manifest.
fn parse_denied_lints(cargo_toml: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in cargo_toml.lines() {
        let l = line.trim();
        if l.starts_with('[') {
            in_section = l == "[workspace.lints.clippy]";
            continue;
        }
        if !in_section || l.is_empty() || l.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = l.split_once('=') {
            if value.trim().trim_matches('"') == "deny" {
                out.push(name.trim().to_string());
            }
        }
    }
    out
}

/// The committed workspace lint policy, used when no root manifest is
/// available (fixture trees).
fn default_denied_lints() -> Vec<String> {
    [
        "unwrap_used",
        "expect_used",
        "float_cmp",
        "cast_possible_truncation",
        "cast_sign_loss",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

/// A finding that was suppressed by an inline waiver.
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver's mandatory reason.
    pub reason: String,
}

/// The result of a full lint run.
pub struct LintReport {
    /// Findings that survive waivers, sorted `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a well-formed waiver.
    pub waived: Vec<WaivedFinding>,
    /// Every `unsafe` site in the workspace (vendor included).
    pub unsafe_inventory: Vec<UnsafeSite>,
}

impl LintReport {
    /// Process exit code under the `pstore-trace diff` contract:
    /// 0 clean, 1 findings.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.findings.is_empty())
    }
}

/// Runs every rule over the loaded workspace and applies waivers.
pub fn run(ws: &Workspace) -> LintReport {
    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::sa01::check(ws));
    raw.extend(rules::sa02::check(ws));
    raw.extend(rules::sa03::check(ws));
    raw.extend(rules::sa04::check(ws));
    let (sa05, unsafe_inventory) = rules::sa05::check(ws);
    raw.extend(sa05);
    raw.extend(rules::sa06::check(ws));
    raw.extend(rules::sa07::check(ws));

    // Malformed waivers are findings themselves and cannot be waived.
    let mut findings: Vec<Finding> = Vec::new();
    let mut waived: Vec<WaivedFinding> = Vec::new();
    for f in &ws.files {
        for w in &f.waivers {
            if let Some(problem) = w.problem() {
                findings.push(Finding {
                    rule: "SA-00",
                    file: f.rel_path.clone(),
                    line: w.line,
                    message: problem,
                });
            }
        }
    }

    for finding in raw {
        match waiver::find_covering(ws, &finding) {
            Some(reason) => waived.push(WaivedFinding { finding, reason }),
            None => findings.push(finding),
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    LintReport {
        findings,
        waived,
        unsafe_inventory,
    }
}

/// Serialises the report as the stable `pstore-lint/v1` JSON document
/// (see `docs/static_analysis.md` for the schema).
pub fn to_json(report: &LintReport, ws: &Workspace) -> String {
    let mut out = String::from("{\"format\":\"pstore-lint/v1\"");
    out.push_str(&format!(
        ",\"root\":{},\"files_scanned\":{}",
        json_str(&ws.root.display().to_string()),
        ws.files.len()
    ));
    push_findings(&mut out, "findings", report.findings.iter());
    out.push_str(",\"waived\":[");
    for (i, w) in report.waived.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_finding_obj(&mut out, &w.finding, Some(&w.reason));
    }
    out.push_str("],\"unsafe_inventory\":[");
    for (i, s) in report.unsafe_inventory.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"kind\":{},\"has_safety_comment\":{}}}",
            json_str(&s.file),
            s.line,
            json_str(s.kind),
            s.has_safety_comment
        ));
    }
    out.push_str("]}");
    out
}

fn push_findings<'a>(out: &mut String, key: &str, it: impl Iterator<Item = &'a Finding>) {
    out.push_str(&format!(",{}:[", json_str(key)));
    for (i, f) in it.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_finding_obj(out, f, None);
    }
    out.push(']');
}

fn push_finding_obj(out: &mut String, f: &Finding, reason: Option<&str>) {
    out.push_str(&format!(
        "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}",
        json_str(f.rule),
        json_str(&f.file),
        f.line,
        json_str(&f.message)
    ));
    if let Some(r) = reason {
        out.push_str(&format!(",\"reason\":{}", json_str(r)));
    }
    out.push('}');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denied_lints_parse_from_manifest() {
        let toml = r#"
[workspace.lints.clippy]
unwrap_used = "deny"
float_cmp = "deny"
something = "warn"

[lints]
workspace = true
"#;
        let lints = parse_denied_lints(toml);
        assert_eq!(lints, vec!["unwrap_used", "float_cmp"]);
    }

    #[test]
    fn cfg_test_marker_found() {
        let f = load_source(
            "crates/x/src/lib.rs".into(),
            "fn a() {}\n#[cfg(test)]\nmod tests {}\n".into(),
        );
        assert_eq!(f.test_start_line, Some(2));
        assert!(!f.line_is_test(1));
        assert!(f.line_is_test(2));
        assert!(f.line_is_test(3));
    }

    #[test]
    fn crate_name_extraction() {
        let f = load_source("crates/sim/src/fast.rs".into(), String::new());
        assert_eq!(f.crate_name(), "sim");
        let v = load_source("vendor/rand/src/lib.rs".into(), String::new());
        assert_eq!(v.crate_name(), "vendor");
        let r = load_source("src/lib.rs".into(), String::new());
        assert_eq!(r.crate_name(), "");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
