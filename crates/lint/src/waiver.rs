//! Inline waiver parsing and resolution.
//!
//! A finding can be suppressed with a comment of the form
//!
//! ```text
//! // pstore-lint: allow(SA-03): reason the exception is sound
//! ```
//!
//! either trailing on the offending line or as a full-line comment
//! directly above it (stacked waiver comments all apply to the next code
//! line). The reason clause is **mandatory**: a waiver without one, or
//! naming an unknown rule, is itself reported under `SA-00`.

use crate::lexer::Lexed;
use crate::{is_known_rule, Finding, Workspace};

/// The marker every waiver comment starts with.
const MARKER: &str = "pstore-lint: allow(";

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The waived rule id, as written (possibly unknown).
    pub rule: String,
    /// Justification text after the second colon, trimmed.
    pub reason: String,
    /// The code line this waiver covers (same line for trailing
    /// comments, the next code line for full-line comments).
    pub covers_line: u32,
}

impl Waiver {
    /// Returns a description of what is wrong with the waiver, if
    /// anything — a missing reason or an unknown rule id.
    pub fn problem(&self) -> Option<String> {
        if !is_known_rule(&self.rule) {
            return Some(format!(
                "waiver names unknown rule `{}` (known: SA-00..SA-07)",
                self.rule
            ));
        }
        if self.reason.is_empty() {
            return Some(format!(
                "waiver for {} has no reason; write `// pstore-lint: allow({}): <why>`",
                self.rule, self.rule
            ));
        }
        None
    }
}

/// Extracts every waiver comment from a lexed file.
pub fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[at + MARKER.len()..];
        let (rule, after) = match rest.split_once(')') {
            Some((r, a)) => (r.trim().to_string(), a),
            None => (rest.trim().to_string(), ""),
        };
        let reason = after
            .trim_start()
            .strip_prefix(':')
            .unwrap_or("")
            .trim()
            .to_string();
        let covers_line = if lexed.has_code_on_line(c.line) {
            c.line
        } else {
            // Full-line comment: covers the next line that has code.
            lexed.next_code_line(c.end_line).unwrap_or(c.end_line)
        };
        out.push(Waiver {
            line: c.line,
            rule,
            reason,
            covers_line,
        });
    }
    out
}

/// Finds a well-formed waiver covering `finding`, returning its reason.
///
/// Stacked full-line waiver comments all resolve to the same next code
/// line, so several rules can be waived above one statement.
pub fn find_covering(ws: &Workspace, finding: &Finding) -> Option<String> {
    let file = ws.file(&finding.file)?;
    file.waivers
        .iter()
        .find(|w| w.problem().is_none() && w.rule == finding.rule && w.covers_line == finding.line)
        .map(|w| w.reason.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_full_line_waivers_resolve() {
        let src = "\
// pstore-lint: allow(SA-03): stacked reason
let a = now(); // pstore-lint: allow(SA-04): trailing reason
let b = 2;
";
        let lexed = lex(src);
        let ws = parse_waivers(&lexed);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, "SA-03");
        assert_eq!(ws[0].covers_line, 2);
        assert_eq!(ws[1].rule, "SA-04");
        assert_eq!(ws[1].covers_line, 2);
        assert!(ws.iter().all(|w| w.problem().is_none()));
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_problems() {
        let lexed =
            lex("// pstore-lint: allow(SA-03)\n// pstore-lint: allow(SA-99): x\nfn f() {}\n");
        let ws = parse_waivers(&lexed);
        assert_eq!(ws.len(), 2);
        assert!(ws[0].problem().is_some_and(|p| p.contains("no reason")));
        assert!(ws[1].problem().is_some_and(|p| p.contains("unknown rule")));
    }
}
