//! Fixture-corpus integration tests: every rule SA-00..07 has a firing
//! `bad` tree and a clean `good` twin under `tests/fixtures/`, and the
//! assertions pin the exact rule ids and line numbers so diagnostics
//! cannot silently drift. A final test lints the real workspace and
//! requires it clean — the same gate CI's static-analysis job enforces.

// Test-only code: panicking on a broken fixture is the correct failure
// mode, and `allow-unwrap-in-tests` does not reach helper fns.
#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};

use pstore_lint::{run, LintReport, Workspace};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    let root = fixture_root(name);
    let ws = Workspace::load(&root).unwrap();
    assert!(!ws.files.is_empty(), "fixture {name} loaded no files");
    run(&ws)
}

/// `(rule, file, line)` triples in report order (sorted file/line/rule).
fn triples(report: &LintReport) -> Vec<(String, String, u32)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.file.clone(), f.line))
        .collect()
}

fn assert_clean(name: &str) -> LintReport {
    let report = lint(name);
    assert!(
        report.findings.is_empty(),
        "{name} expected clean, got: {:#?}",
        report.findings
    );
    report
}

#[test]
fn sa00_malformed_waivers_fire() {
    let report = lint("sa00_bad");
    assert_eq!(
        triples(&report),
        vec![
            ("SA-00".into(), "crates/x/src/lib.rs".into(), 1),
            ("SA-00".into(), "crates/x/src/lib.rs".into(), 3),
        ]
    );
    assert!(report.findings[0].message.contains("unknown rule"));
    assert!(report.findings[1].message.contains("no reason"));
}

#[test]
fn sa00_well_formed_waiver_suppresses_and_is_reported() {
    let report = assert_clean("sa00_good");
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].finding.rule, "SA-03");
    assert_eq!(report.waived[0].finding.line, 6);
    assert!(report.waived[0].reason.contains("smoke harness"));
}

#[test]
fn sa01_incoherent_registry_fires() {
    let report = lint("sa01_bad");
    let reg = "crates/core/src/invariant.rs";
    assert_eq!(
        triples(&report),
        vec![
            ("SA-01".into(), reg.into(), 13),
            ("SA-01".into(), reg.into(), 13),
            ("SA-01".into(), reg.into(), 13),
            ("SA-01".into(), "docs/invariants.md".into(), 5),
            ("SA-01".into(), "docs/invariants.md".into(), 9),
        ]
    );
    // The three registry findings are the missing checker, doc section
    // and test mention for MOV-01; the doc findings are the dead SCH-02
    // and ISO-02 sections (the fully wired ISO-01 stays silent).
    assert!(report.findings[0].message.contains("no checker reference"));
    assert!(report.findings[1].message.contains("no section"));
    assert!(report.findings[2]
        .message
        .contains("never mentioned in a test"));
    assert!(report.findings[3].message.contains("SCH-02"));
    assert!(report.findings[4].message.contains("ISO-02"));
}

#[test]
fn sa01_ranges_and_variant_names_satisfy_coherence() {
    assert_clean("sa01_good");
}

#[test]
fn sa02_unregistered_names_and_unpaired_spans_fire() {
    let report = lint("sa02_bad");
    let f = "crates/dbms/src/lib.rs";
    assert_eq!(
        triples(&report),
        vec![
            ("SA-02".into(), f.into(), 4),
            ("SA-02".into(), f.into(), 5),
            ("SA-02".into(), f.into(), 6),
            ("SA-02".into(), f.into(), 7),
            ("SA-02".into(), f.into(), 8),
        ]
    );
    assert!(report.findings[0].message.contains("kinds::MISSING"));
    assert!(report.findings[1].message.contains("untracked"));
    assert!(report.findings[4]
        .message
        .contains("1 begin_span but 0 end_span"));
}

#[test]
fn sa02_registered_and_paired_spans_pass() {
    assert_clean("sa02_good");
}

#[test]
fn sa03_wall_clock_and_hash_iteration_fire() {
    let report = lint("sa03_bad");
    let f = "crates/sim/src/lib.rs";
    assert_eq!(
        triples(&report),
        vec![
            ("SA-03".into(), f.into(), 5),
            ("SA-03".into(), f.into(), 5),
            ("SA-03".into(), f.into(), 10),
        ]
    );
    assert!(report.findings[2].message.contains("HashMap"));
}

#[test]
fn sa03_ordered_iteration_passes() {
    assert_clean("sa03_good");
}

#[test]
fn sa04_raw_primitives_and_spawn_fire() {
    // The fixture lives in `crates/sim` so only SA-04 is exercised;
    // the same code in `crates/dbms` would additionally trip SA-07.
    let report = lint("sa04_bad");
    let f = "crates/sim/src/lib.rs";
    assert_eq!(
        triples(&report),
        vec![("SA-04".into(), f.into(), 1), ("SA-04".into(), f.into(), 8),]
    );
    assert!(report.findings[0].message.contains("Mutex"));
    assert!(report.findings[1].message.contains("thread::spawn"));
}

#[test]
fn sa04_sync_shim_passes() {
    assert_clean("sa04_good");
}

#[test]
fn sa05_missing_safety_comment_fires_and_inventories() {
    let report = lint("sa05_bad");
    assert_eq!(
        triples(&report),
        vec![("SA-05".into(), "crates/x/src/lib.rs".into(), 2)]
    );
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(!report.unsafe_inventory[0].has_safety_comment);
}

#[test]
fn sa05_safety_comment_passes_and_inventories() {
    let report = assert_clean("sa05_good");
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(report.unsafe_inventory[0].has_safety_comment);
    assert_eq!(report.unsafe_inventory[0].kind, "block");
}

#[test]
fn sa06_undocumented_allow_fires() {
    let report = lint("sa06_bad");
    assert_eq!(
        triples(&report),
        vec![("SA-06".into(), "crates/x/src/lib.rs".into(), 1)]
    );
    assert!(report.findings[0].message.contains("unwrap_used"));
}

#[test]
fn sa06_justified_allow_passes() {
    assert_clean("sa06_good");
}

#[test]
fn sa07_dbms_sync_outside_shim_fires_even_in_tests() {
    let report = lint("sa07_bad");
    let f = "crates/dbms/src/lib.rs";
    assert_eq!(
        triples(&report),
        vec![
            ("SA-07".into(), f.into(), 1),
            ("SA-07".into(), f.into(), 8),
            ("SA-07".into(), f.into(), 15),
        ]
    );
    // The three findings are exactly the gaps SA-04 leaves open: Arc,
    // a non-spawn thread item, and sync use inside `#[cfg(test)]`.
    assert!(report.findings[0].message.contains("std::sync::Arc"));
    assert!(report.findings[1]
        .message
        .contains("std::thread::yield_now"));
    assert!(report.findings[2].message.contains("std::sync::Mutex"));
    assert!(report
        .findings
        .iter()
        .all(|x| x.message.contains("crate::sync")));
}

#[test]
fn sa07_shim_routing_passes_and_waiver_suppresses() {
    let report = assert_clean("sa07_good");
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].finding.rule, "SA-07");
    assert_eq!(report.waived[0].finding.line, 15);
    assert!(report.waived[0].reason.contains("host-capacity query"));
}

#[test]
fn json_document_carries_all_sections() {
    let ws = Workspace::load(&fixture_root("sa05_bad")).unwrap();
    let report = run(&ws);
    let json = pstore_lint::to_json(&report, &ws);
    assert!(json.starts_with("{\"format\":\"pstore-lint/v1\""));
    assert!(json.contains("\"root\":"));
    assert!(json.contains("\"files_scanned\":1"));
    assert!(json.contains("\"findings\":["));
    assert!(json.contains("\"waived\":["));
    assert!(json.contains("\"unsafe_inventory\":["));
    assert!(json.contains("\"has_safety_comment\":false"));
}

#[test]
fn exit_codes_follow_the_trace_diff_contract() {
    assert_eq!(lint("sa05_bad").exit_code(), 1);
    assert_eq!(lint("sa05_good").exit_code(), 0);
}

/// The real workspace must stay lint-clean: every finding is either
/// fixed or carries an inline waiver with a reason. This is the same
/// gate `scripts/static_analysis.sh` and CI enforce via the binary.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let ws = Workspace::load(root).unwrap();
    assert!(ws.files.len() > 100, "workspace scan looks truncated");
    let report = run(&ws);
    assert!(
        report.findings.is_empty(),
        "workspace has un-waived findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every waiver in the tree must carry a reason (guaranteed by
    // construction, double-checked here for the report consumers).
    assert!(report.waived.iter().all(|w| !w.reason.is_empty()));
}
