use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn wall() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn dump(m: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in m {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
