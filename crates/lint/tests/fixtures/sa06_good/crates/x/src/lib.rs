// The caller contract requires a non-empty slice; unwrap documents it.
#[allow(clippy::unwrap_used)]
pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
