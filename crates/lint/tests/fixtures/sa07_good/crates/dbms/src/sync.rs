//! pstore-lint: sync-shim — the crate's gateway to synchronisation
//! primitives; loom-modelled under `cfg(loom)`.

#[cfg(not(loom))]
pub use std::sync::Arc;
#[cfg(not(loom))]
pub use std::thread;

#[cfg(loom)]
pub use loom::sync::Arc;
#[cfg(loom)]
pub use loom::thread;
