pub mod sync;

use crate::sync::{thread, Arc};

pub struct S {
    inner: Arc<u64>,
}

pub fn idle() {
    thread::yield_now();
}

pub fn host_cpus() -> usize {
    // pstore-lint: allow(SA-07): host-capacity query, not synchronisation; loom never schedules it
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
