use std::time::Instant;

/// Returns a coarse wall-clock stamp for the smoke harness.
pub fn stamp() -> Instant {
    // pstore-lint: allow(SA-03): smoke harness only; never on a simulated path
    Instant::now()
}
