use std::sync::Mutex;

pub struct S {
    inner: Mutex<u64>,
}

pub fn go() {
    std::thread::spawn(|| {});
}
