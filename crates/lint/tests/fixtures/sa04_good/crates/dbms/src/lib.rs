pub mod sync;

use crate::sync::Mutex;

pub struct S {
    inner: Mutex<u64>,
}
