//! pstore-lint: sync-shim — the crate's gateway to synchronisation
//! primitives; loom-modelled under `cfg(loom)`.

#[cfg(not(loom))]
pub use std::sync::Mutex;

#[cfg(loom)]
pub use loom::sync::Mutex;
