//! Checks `SCH-01..02` round structure, the MoveTiling horizon, and
//! `ISO-01..02` history serializability.
pub fn check() {}
