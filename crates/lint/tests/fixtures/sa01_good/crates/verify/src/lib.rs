//! Checks `SCH-01..02` round structure, the MoveTiling horizon,
//! `ISO-01..02` history serializability, and the `PRV-01..03`
//! provisioning ledger/causality/bookkeeping family.
pub fn check() {}
