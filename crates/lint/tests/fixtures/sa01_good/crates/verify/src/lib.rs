//! Checks `SCH-01..02` round structure and the MoveTiling horizon.
pub fn check() {}
