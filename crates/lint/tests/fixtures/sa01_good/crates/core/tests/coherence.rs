// Round-trips SCH-01..02, MOV-01, ISO-01..02 and PRV-01..03.
#[test]
fn all_codes() {}
