// Round-trips SCH-01..02, MOV-01 and ISO-01..02.
#[test]
fn all_codes() {}
