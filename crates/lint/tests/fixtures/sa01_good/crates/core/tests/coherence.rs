// Round-trips SCH-01..02 and MOV-01.
#[test]
fn all_codes() {}
