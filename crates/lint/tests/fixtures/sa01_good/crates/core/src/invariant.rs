/// Registry fixture: every code is cross-referenced, partly via range
/// shorthand and partly via variant names.
pub enum InvariantId {
    ScheduleRoundCount,
    ScheduleRoundStructure,
    MoveTiling,
    IsoDsgAcyclic,
    IsoReadCommitOrder,
    ProvLedgerConservation,
    ProvDecisionCausality,
    ProvForecastBookkeeping,
}

impl InvariantId {
    pub fn code(self) -> &'static str {
        match self {
            InvariantId::ScheduleRoundCount => "SCH-01",
            InvariantId::ScheduleRoundStructure => "SCH-02",
            InvariantId::MoveTiling => "MOV-01",
            InvariantId::IsoDsgAcyclic => "ISO-01",
            InvariantId::IsoReadCommitOrder => "ISO-02",
            InvariantId::ProvLedgerConservation => "PRV-01",
            InvariantId::ProvDecisionCausality => "PRV-02",
            InvariantId::ProvForecastBookkeeping => "PRV-03",
        }
    }
}
