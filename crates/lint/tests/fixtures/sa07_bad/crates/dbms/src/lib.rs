use std::sync::Arc;

pub struct S {
    inner: Arc<u64>,
}

pub fn idle() {
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _guard = std::sync::Mutex::new(0u64);
    }
}
