use pstore_telemetry::{begin_span, end_span, kinds, span_names, tel_event, tel_span};

pub fn run() {
    tel_event!(kinds::TICKED, &[]);
    tel_event!("ticked", &[]);
    tel_span!(guard, span_names::WORK);
    let s = begin_span("work", &[]);
    end_span(span_names::WORK, s, &[]);
}
