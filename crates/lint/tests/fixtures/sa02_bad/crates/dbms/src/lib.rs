use pstore_telemetry::{begin_span, end_span, kinds, tel_event};

pub fn run() {
    tel_event!(kinds::MISSING, &[]);
    tel_event!("untracked", &[]);
    let s = begin_span("rogue", &[]);
    end_span("rogue", s, &[]);
    let w = begin_span("work", &[]);
    let _ = (s, w);
}
