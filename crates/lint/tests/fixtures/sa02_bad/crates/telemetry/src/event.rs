pub mod kinds {
    pub const TICKED: &str = "ticked";
}

pub mod span_names {
    pub const WORK: &str = "work";
}
