// pstore-lint: allow(SA-99): no such rule
pub fn a() {}
// pstore-lint: allow(SA-03)
pub fn b() {}
