use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn dump(m: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in m {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn dump_sorted(m: &HashMap<String, u64>) -> String {
    let mut keys: Vec<&String> = m.keys().collect();
    keys.sort();
    let mut out = String::new();
    for k in keys {
        out.push_str(k);
    }
    out
}
