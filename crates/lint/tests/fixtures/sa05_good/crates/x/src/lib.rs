pub fn read_first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *v.as_ptr() }
}
