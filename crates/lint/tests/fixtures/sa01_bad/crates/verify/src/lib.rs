//! Checks `SCH-01` round counts; the move family is not wired up.
pub fn check() {}
