//! Checks `SCH-01` round counts and `ISO-01` serializability; the move
//! family is not wired up.
pub fn check() {}
