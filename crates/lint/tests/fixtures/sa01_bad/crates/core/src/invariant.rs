/// Registry fixture: `MOV-01` is deliberately left uncross-referenced;
/// `ISO-01` is fully wired so only the dead `ISO-02` doc section fires.
pub enum InvariantId {
    ScheduleRoundCount,
    MoveTiling,
    IsoDsgAcyclic,
}

impl InvariantId {
    pub fn code(self) -> &'static str {
        match self {
            InvariantId::ScheduleRoundCount => "SCH-01",
            InvariantId::MoveTiling => "MOV-01",
            InvariantId::IsoDsgAcyclic => "ISO-01",
        }
    }
}
