/// Registry fixture: `MOV-01` is deliberately left uncross-referenced.
pub enum InvariantId {
    ScheduleRoundCount,
    MoveTiling,
}

impl InvariantId {
    pub fn code(self) -> &'static str {
        match self {
            InvariantId::ScheduleRoundCount => "SCH-01",
            InvariantId::MoveTiling => "MOV-01",
        }
    }
}
