// Exercises SCH-01 and ISO-01 only.
#[test]
fn sch01() {}
