// Exercises SCH-01 only.
#[test]
fn sch01() {}
