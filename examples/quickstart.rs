//! Quickstart: predict load, plan reconfigurations, inspect the migration
//! schedule — the P-Store pipeline in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`
#![allow(clippy::expect_used, clippy::unwrap_used)] // example code: abort loudly

use pstore::core::planner::{Planner, PlannerConfig};
use pstore::core::schedule::MigrationSchedule;
use pstore::forecast::generators::B2wLoadModel;
use pstore::forecast::model::LoadPredictor;
use pstore::forecast::spar::{SparConfig, SparModel};

fn main() {
    // 1. Five weeks of per-minute retail load (a stand-in for the B2W
    //    transaction logs).
    let load = B2wLoadModel::default().generate(35);
    let minutes = load.values();
    let train_len = 28 * 1440; // train on four weeks, as in the paper

    // 2. Fit SPAR (Eq 8): periodic terms over the previous 7 days plus the
    //    offset of the last 30 minutes from the typical day.
    let spar = SparModel::fit(&minutes[..train_len], &SparConfig::b2w_default())
        .expect("four weeks is plenty of training data");
    println!(
        "SPAR fitted: {} periodic + {} transient coefficients",
        spar.periodic_coefficients().len(),
        spar.recent_coefficients().len()
    );

    // 3. Forecast the next three hours at 5-minute granularity.
    let horizon_min = spar.predict_horizon(&minutes[..train_len], 180);
    let mut curve: Vec<f64> = vec![minutes[train_len - 1]];
    curve.extend(
        horizon_min
            .chunks(5)
            .map(|w| w.iter().sum::<f64>() / w.len() as f64),
    );
    println!(
        "forecast: now {:.0} req/min, in 3h {:.0} req/min",
        curve[0],
        curve.last().unwrap()
    );

    // 4. Plan the cheapest series of moves that keeps (effective) capacity
    //    above the prediction (Algorithms 1-3). Units: Q is capacity per
    //    machine in the same req/min units; D = 4646 s in 5-min intervals.
    let planner = Planner::new(PlannerConfig {
        q: 3_500.0,        // one machine serves 3 500 req/min at target load
        d_intervals: 15.5, // D = 4646 s / 300 s
        partitions_per_node: 6,
        max_machines: 10,
    });
    let current_machines = 3;
    let plan = planner
        .best_moves(&curve, current_machines)
        .expect("feasible under the hardware cap");
    println!("\noptimal plan from {current_machines} machines:");
    for mv in plan.moves() {
        println!("  {mv}");
    }

    // 5. The first real move, expanded into its §4.4.1 migration schedule.
    if let Some(mv) = plan.first_reconfiguration() {
        let schedule = MigrationSchedule::plan(mv.from, mv.to);
        println!(
            "\nfirst move {} -> {} machines: {} rounds, avg {:.2} machines allocated",
            mv.from,
            mv.to,
            schedule.total_rounds(),
            schedule.avg_machines()
        );
        for (i, round) in schedule.rounds().iter().enumerate() {
            let pairs: Vec<String> = round
                .transfers
                .iter()
                .map(|t| format!("{}->{}", t.from, t.to))
                .collect();
            println!("  round {i}: {}", pairs.join(" "));
        }
    } else {
        println!("\nno reconfiguration needed over this horizon");
    }
}
