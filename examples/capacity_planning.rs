//! What-if capacity planning: compare five allocation strategies over two
//! weeks of load with the slot-based simulator and print the cost /
//! capacity-shortfall trade-off each achieves.
//!
//! Run with: `cargo run --release --example capacity_planning`

#![allow(clippy::expect_used, clippy::unwrap_used)] // example code: abort loudly
use pstore::core::params::SystemParams;
use pstore::forecast::generators::B2wLoadModel;
use pstore::sim::fast::{run_fast, FastSimConfig};
use pstore::sim::scenarios::{
    pstore_oracle_fast, pstore_spar_fast, reactive_fast, simple_schedule, static_alloc,
    PEAK_TXN_RATE, TRAINING_DAYS,
};

fn main() {
    // Four training weeks + two evaluation weeks of per-minute load.
    let raw = B2wLoadModel {
        seed: 2024,
        ..B2wLoadModel::default()
    }
    .generate(TRAINING_DAYS + 14);
    let eval_start = TRAINING_DAYS * 1440;
    let peak = raw.values()[eval_start..]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / peak);
    let train = &scaled.values()[..eval_start];
    let eval = &scaled.values()[eval_start..];

    let params = SystemParams::b2w_paper();
    let cfg = FastSimConfig {
        params: params.clone(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: false,
        prov_events: false,
    };

    println!(
        "two weeks of load, peak {PEAK_TXN_RATE:.0} txn/s, Q = {:.0}, Q-hat = {:.0}\n",
        params.q, params.q_hat
    );
    println!(
        "{:<22} {:>12} {:>14} {:>8}",
        "strategy", "avg machines", "% time short", "moves"
    );

    let report = |name: &str, r: pstore::sim::fast::FastSimResult| {
        println!(
            "{name:<22} {:>12.2} {:>14.3} {:>8}",
            r.avg_machines(),
            r.pct_insufficient(),
            r.reconfigurations
        );
    };

    report(
        "P-Store (SPAR)",
        run_fast(
            &cfg,
            eval,
            &mut pstore_spar_fast(train, eval[0], &params, params.q),
        ),
    );
    report(
        "P-Store (oracle)",
        run_fast(&cfg, eval, &mut pstore_oracle_fast(eval, &params, params.q)),
    );
    report(
        "Reactive (10% buf)",
        run_fast(&cfg, eval, &mut reactive_fast(eval[0], &params, 0.10)),
    );
    report(
        "Simple 8/3 schedule",
        run_fast(&cfg, eval, &mut simple_schedule(8, 3)),
    );
    report("Static 10", run_fast(&cfg, eval, &mut static_alloc(10)));
    report("Static 4", run_fast(&cfg, eval, &mut static_alloc(4)));

    println!();
    println!("reading: P-Store should achieve near-zero shortfall at roughly");
    println!("half the machines of peak-static — the paper's headline claim.");
}
