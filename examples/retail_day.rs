//! A full simulated day of online-retail traffic under the P-Store
//! controller: real B2W transactions on the real partitioned engine, with
//! live migrations planned by the SPAR-fed dynamic program.
//!
//! Run with: `cargo run --release --example retail_day`

#![allow(clippy::expect_used, clippy::unwrap_used)] // example code: abort loudly
use pstore::core::params::SystemParams;
use pstore::sim::detailed::{run_detailed, DetailedSimConfig};
use pstore::sim::latency::SLA_THRESHOLD_S;
use pstore::sim::scenarios::{pstore_spar, ExperimentTrace};

fn main() {
    // One evaluation day after the standard four training weeks, replayed
    // at the paper's 10x speed (8 640 wall-seconds).
    let trace = ExperimentTrace::b2w(1, 42);
    let params = SystemParams::b2w_paper();
    let mut controller = pstore_spar(&trace, &params);

    let mut cfg = DetailedSimConfig::paper_defaults(trace.wall_seconds.clone(), 42);
    cfg.workload.num_skus = 2_000;
    cfg.workload.initial_carts = 600;
    cfg.num_slots = 3_600;

    println!("simulating one day of retail traffic (10x compressed)...");
    let result = run_detailed(&cfg, &mut controller);

    println!("\n=== day summary under {} ===", result.strategy);
    println!("transactions committed : {}", result.committed);
    println!("business aborts        : {}", result.aborted);
    println!("client timeouts        : {}", result.dropped);
    println!("average machines       : {:.2}", result.avg_machines);
    println!(
        "SLA violations (s)     : p50 {}, p95 {}, p99 {}",
        result.violations.p50, result.violations.p95, result.violations.p99
    );
    println!("reconfigurations       : {}", result.reconfig_spans.len());
    for (i, (s, e)) in result.reconfig_spans.iter().enumerate() {
        println!("  move {i}: {:>6.0}s .. {:>6.0}s ({:.0}s)", s, e, e - s);
    }

    println!("\ntop procedures (committed/aborted):");
    for (name, c, a) in result.procedure_mix.iter().take(8) {
        println!("  {name:<24} {c:>9} / {a}");
    }

    // An hour-by-hour digest (each trace hour = 360 wall seconds).
    println!("\nhour  offered(txn/s)  machines  p99(ms)  bad-secs");
    for hour in 0..24 {
        let lo = hour * 360;
        let hi = ((hour + 1) * 360).min(result.seconds.len());
        if lo >= result.seconds.len() {
            break;
        }
        let window = &result.seconds[lo..hi];
        let offered = trace.wall_seconds[lo..hi.min(trace.wall_seconds.len())]
            .iter()
            .sum::<f64>()
            / (hi - lo) as f64;
        let machines = window.iter().map(|s| s.machines).sum::<f64>() / window.len() as f64;
        let p99 = window.iter().map(|s| s.p99).fold(0.0f64, f64::max);
        let bad = window.iter().filter(|s| s.p99 > SLA_THRESHOLD_S).count();
        println!(
            "{hour:>4}  {offered:>14.0}  {machines:>8.1}  {:>7.0}  {bad:>8}",
            p99 * 1000.0
        );
    }
}
