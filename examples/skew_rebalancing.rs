//! Skew management (the paper's §10 future-work direction): detect a hot
//! key with slot-level monitoring, plan an E-Store-style rebalance, and
//! execute it live — alongside P-Store's size-changing reconfigurations.
//!
//! Run with: `cargo run --release --example skew_rebalancing`

#![allow(clippy::expect_used, clippy::unwrap_used)] // example code: abort loudly
use pstore::b2w::generator::{WorkloadConfig, WorkloadGenerator};
use pstore::b2w::procedures::GetStockQuantity;
use pstore::b2w::schema::b2w_catalog;
use pstore::dbms::cluster::{Cluster, ClusterConfig};
use pstore::dbms::skew::{imbalance, node_loads, plan_rebalance, SkewConfig};

fn main() {
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        num_skus: 2_000,
        initial_carts: 500,
        ..WorkloadConfig::default()
    });
    let mut cluster = Cluster::new(
        b2w_catalog(),
        ClusterConfig {
            partitions_per_node: 6,
            num_slots: 7_200,
        },
        4,
    );
    for p in gen.seed_stock_procedures() {
        cluster.execute(&p).unwrap();
    }
    for t in gen.initial_load() {
        cluster.execute(&t).unwrap();
    }

    // Normal traffic plus three viral products everyone is checking: 30%
    // of all requests hit three SKUs — the hot-tuple skew E-Store was
    // built for, which P-Store's uniform model does not handle.
    let viral: Vec<String> = [17, 171, 1234]
        .iter()
        .map(|&i| gen.seed_stock_procedures()[i].sku.clone())
        .collect();
    println!("running skewed traffic: 30% of reads hit {viral:?}");
    let skewed = |cluster: &mut Cluster, gen: &mut WorkloadGenerator, n: usize| {
        for i in 0..n {
            if i % 10 < 3 {
                let _ = cluster.execute(&GetStockQuantity {
                    sku: viral[i % 3].clone(),
                });
            } else {
                let t = gen.next_txn();
                let _ = cluster.execute(&t);
            }
        }
    };
    cluster.reset_slot_accesses();
    skewed(&mut cluster, &mut gen, 120_000);

    let report = cluster.slot_access_report();
    let loads = node_loads(cluster.current_plan(), &report);
    println!("\nper-node load (accesses) before rebalance: {loads:?}");
    println!(
        "imbalance: max is {:.1}% above the mean",
        100.0 * imbalance(&loads)
    );

    let proposal = plan_rebalance(
        cluster.current_plan(),
        &report,
        &SkewConfig {
            imbalance_threshold: 0.10,
            max_slot_moves: 64,
        },
    )
    .expect("the viral SKU should trip the imbalance detector");
    println!(
        "\nrebalance plan: {} slot moves, predicted imbalance {:.1}%",
        proposal.moves.len(),
        100.0 * proposal.predicted_imbalance
    );
    for (slot, from, to) in proposal.moves.iter().take(5) {
        println!("  slot {slot}: node {from} -> node {to}");
    }

    // Execute it live, traffic still running.
    cluster.begin_plan_reconfiguration(proposal.plan).unwrap();
    let mut i = 0usize;
    while cluster.reconfiguring() {
        let pairs = cluster.pair_transfers().len();
        let _ = cluster.migrate_chunk(i % pairs, 32 * 1024).unwrap();
        skewed(&mut cluster, &mut gen, 10);
        i += 1;
    }
    println!("\nrebalance executed live ({i} chunk steps)");

    // Measure again under the same skewed traffic.
    cluster.reset_slot_accesses();
    skewed(&mut cluster, &mut gen, 120_000);
    let report = cluster.slot_access_report();
    let loads = node_loads(cluster.current_plan(), &report);
    println!("\nper-node load (accesses) after rebalance:  {loads:?}");
    println!(
        "imbalance: max is {:.1}% above the mean",
        100.0 * imbalance(&loads)
    );
    println!("\n(P-Store decides *how many* machines; this balancer decides");
    println!(" *where* the hot data lives — the combination §10 calls for)");
}
