//! Live migration at the engine level: populate a cluster with shopping
//! carts, scale from 2 to 5 nodes *while traffic keeps running*, and show
//! that every row survives, updates land on the right side of the move,
//! and data stays balanced.
//!
//! Run with: `cargo run --release --example live_migration`

#![allow(clippy::expect_used, clippy::unwrap_used)] // example code: abort loudly
use pstore::b2w::generator::{WorkloadConfig, WorkloadGenerator};
use pstore::b2w::schema::b2w_catalog;
use pstore::dbms::cluster::{Cluster, ClusterConfig};

fn main() {
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        num_skus: 3_000,
        initial_carts: 1_000,
        ..WorkloadConfig::default()
    });
    let mut cluster = Cluster::new(
        b2w_catalog(),
        ClusterConfig {
            partitions_per_node: 6,
            num_slots: 7_200,
        },
        2,
    );
    for p in gen.seed_stock_procedures() {
        cluster.execute(&p).unwrap();
    }
    for t in gen.initial_load() {
        cluster.execute(&t).unwrap();
    }
    let rows_before = cluster.total_rows();
    println!(
        "loaded {} rows ({:.1} MB estimated) on 2 nodes",
        rows_before,
        cluster.total_bytes() as f64 / 1e6
    );

    // Scale out 2 -> 5 while interleaving live traffic with migration
    // chunks, exactly as the simulator paces them.
    cluster.begin_reconfiguration(5).unwrap();
    println!(
        "reconfiguring 2 -> 5: {} sender/receiver pair streams, {:.1} MB to move",
        cluster.pair_transfers().len(),
        cluster.bytes_to_move(5) as f64 / 1e6
    );

    let mut chunks = 0u64;
    let mut live_txns = 0u64;
    let mut i = 0usize;
    while cluster.reconfiguring() {
        let pairs = cluster.pair_transfers().len();
        let _ = cluster.migrate_chunk(i % pairs, 2 * 1024).unwrap();
        chunks += 1;
        // Keep serving requests mid-move.
        for _ in 0..20 {
            let txn = gen.next_txn();
            let _ = cluster.execute(&txn);
            live_txns += 1;
        }
        i += 1;
    }
    println!("migration complete after {chunks} chunks; {live_txns} transactions served mid-move");

    let stats = cluster.stats();
    println!(
        "transactions that touched in-flight data: {}",
        stats.touched_migrating
    );

    // Balance report.
    println!("\nper-node data after the move:");
    let report = cluster.partition_report();
    for node in 0..cluster.active_nodes() {
        let bytes: usize = report.iter().filter(|r| r.0 == node).map(|r| r.3).sum();
        let rows: usize = report.iter().filter(|r| r.0 == node).map(|r| r.4).sum();
        println!(
            "  node {node}: {rows:>7} rows, {:>6.2} MB",
            bytes as f64 / 1e6
        );
    }
    println!(
        "\ntotal rows: {} (none lost; traffic added/removed some mid-move)",
        cluster.total_rows()
    );
    assert_eq!(cluster.active_nodes(), 5);
}
