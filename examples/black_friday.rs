//! Black Friday: watch P-Store combine prediction with its reactive
//! fallback when the load breaks out of its usual pattern, against a
//! fixed day/night schedule that cannot.
//!
//! Run with: `cargo run --release --example black_friday`

#![allow(clippy::expect_used, clippy::unwrap_used)] // example code: abort loudly
use pstore::core::controller::manual::{ManualOverride, Reservation};
use pstore::core::params::SystemParams;
use pstore::forecast::generators::B2wLoadModel;
use pstore::sim::fast::{run_fast, FastSimConfig};
use pstore::sim::scenarios::{pstore_spar_fast, simple_schedule, PEAK_TXN_RATE, TRAINING_DAYS};

fn main() {
    // Training weeks plus a week whose Friday carries the surge.
    let model = B2wLoadModel {
        seed: 1124,
        black_friday_days: vec![TRAINING_DAYS + 4],
        ..B2wLoadModel::default()
    };
    let raw = model.generate(TRAINING_DAYS + 7);
    let eval_start = TRAINING_DAYS * 1440;
    let normal_peak = raw.values()[eval_start..eval_start + 2 * 1440]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / normal_peak);
    let train = &scaled.values()[..eval_start];
    let eval = &scaled.values()[eval_start..];

    let params = SystemParams::b2w_paper();
    let cfg = FastSimConfig {
        params: params.clone(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: true,
        prov_events: false,
    };

    let pstore = run_fast(
        &cfg,
        eval,
        &mut pstore_spar_fast(train, eval[0], &params, params.q),
    );
    let simple = run_fast(&cfg, eval, &mut simple_schedule(8, 3));

    // The paper's full composite strategy (§1): predictive + reactive +
    // *manual* — operations knows Black Friday is coming even though no
    // statistical model does, so it reserves the full cluster for the day.
    // Ticks are 5 minutes: day 4 spans ticks [4*288, 5*288).
    let reservation = Reservation {
        start_interval: 4 * 288,
        end_interval: 5 * 288,
        min_machines: 10,
        lead_intervals: 6, // half an hour of lead time
    };
    let mut composite = ManualOverride::new(
        pstore_spar_fast(train, eval[0], &params, params.q),
        vec![reservation],
    );
    let with_manual = run_fast(&cfg, eval, &mut composite);

    println!("day-by-day: minutes of *avoidable* insufficient capacity\n(excluding minutes beyond the 10-machine hardware ceiling)\n");
    println!(
        "{:>4} {:>16} {:>16} {:>16} {:>14}",
        "day", "P-Store (SPAR)", "+ manual resv", "Simple 8/3", "peak (txn/s)"
    );
    for day in 0..7 {
        let lo = day * 1440;
        let hi = (day + 1) * 1440;
        // "Avoidable" shortfall excludes minutes whose load exceeds even
        // the full 10-machine cluster — no strategy can serve those.
        let ceiling = 10.0 * params.q_hat;
        let short = |r: &pstore::sim::fast::FastSimResult| {
            eval[lo..hi]
                .iter()
                .zip(&r.capacity_timeline[lo..hi])
                .filter(|(l, c)| **l > **c as f64 && **l <= ceiling)
                .count()
        };
        let peak = eval[lo..hi].iter().copied().fold(0.0, f64::max);
        let marker = if day == 4 { "  <- Black Friday" } else { "" };
        println!(
            "{day:>4} {:>16} {:>16} {:>16} {:>14.0}{marker}",
            short(&pstore),
            short(&with_manual),
            short(&simple),
            peak
        );
    }

    println!();
    println!(
        "machines: P-Store avg {:.2} ({} moves), with manual {:.2} ({} moves), \
         Simple avg {:.2} ({} moves)",
        pstore.avg_machines(),
        pstore.reconfigurations,
        with_manual.avg_machines(),
        with_manual.reconfigurations,
        simple.avg_machines(),
        simple.reconfigurations
    );
    println!();
    println!("The surge exceeds what the fixed schedule provisions; P-Store's");
    println!("transient-offset terms and emergency fallback push it to the");
    println!("hardware limit as the surge builds (paper Fig 13, right).");
    println!();
    println!("Note the manual reservation adds no avoidable-shortfall benefit");
    println!("over predictive+reactive alone — exactly the paper's conclusion");
    println!("that manual provisioning 'is not strictly necessary, but may");
    println!("still be used as an extra precaution' (it does pre-position");
    println!("capacity, trading a few machine-hours for calmer mornings).");
}
