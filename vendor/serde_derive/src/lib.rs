//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing in-tree actually serialises them yet (no
//! `serde_json`/bincode dependency exists in the container). These derives
//! therefore accept the syntax, including `#[serde(...)]` helper
//! attributes, and expand to nothing. When real serialisation lands, swap
//! the `vendor/serde*` path dependencies back to the crates.io versions.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
