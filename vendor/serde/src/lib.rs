//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(...)]` compile unchanged. The traits are inert markers — no
//! in-tree code performs real (de)serialisation yet. See
//! `vendor/serde_derive` for the expansion side.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
