//! Litmus tests for the vendored model checker itself. These run under
//! plain `cargo test` (the checker needs no `--cfg loom`; only code
//! that *swaps* std primitives for loom ones does) and pin down the
//! two properties the workspace's CON models rely on:
//!
//! 1. correctly ordered protocols pass *exhaustively*, and
//! 2. under-ordered protocols (Relaxed where Acquire/Release is
//!    required) are caught as real failures, not missed.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

/// Message passing with a Release store / Acquire load pair: once the
/// flag is observed set, the payload must be visible. Exhaustive.
#[test]
fn message_passing_release_acquire_passes() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read past acquire");
        }
        t.join().unwrap();
    });
}

/// The same protocol with the flag store downgraded to Relaxed: no
/// synchronises-with edge, so the checker must find an execution where
/// the flag is set but the payload is still stale.
#[test]
#[should_panic(expected = "stale read slipped through")]
fn message_passing_relaxed_is_caught() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "stale read slipped through"
            );
        }
        t.join().unwrap();
    });
}

/// Release-sequence continuation: an RMW in the middle of the chain
/// forwards the head's release clock even when the RMW itself is
/// Relaxed, exactly as C++17 §32.4 specifies.
#[test]
fn rmw_continues_release_sequence() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t1 = loom::thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        let f3 = flag.clone();
        let t2 = loom::thread::spawn(move || {
            // Relaxed RMW: must not break the release sequence headed
            // by the Release store above.
            f3.fetch_add(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 2 {
            // Both the release store and the RMW happened; the acquire
            // load reading the RMW's value still synchronises with the
            // sequence head.
            assert_eq!(data.load(Ordering::Relaxed), 7);
        }
        t1.join().unwrap();
        t2.join().unwrap();
    });
}

/// Lost updates are impossible: RMWs always read the latest store.
#[test]
fn concurrent_fetch_add_never_loses_updates() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let (a, b) = (n.clone(), n.clone());
        let t1 = loom::thread::spawn(move || a.fetch_add(1, Ordering::Relaxed));
        let t2 = loom::thread::spawn(move || b.fetch_add(1, Ordering::Relaxed));
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// Mutexes provide both mutual exclusion and the unlock→lock
/// happens-before edge.
#[test]
fn mutex_mutual_exclusion_and_handoff() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let (m1, m2) = (m.clone(), m.clone());
        let t1 = loom::thread::spawn(move || {
            let mut g = m1.lock().unwrap();
            *g += 1;
        });
        let t2 = loom::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g += 1;
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

/// Classic ABBA deadlock: the checker must find the interleaving where
/// both threads hold one lock and wait for the other, and report it.
#[test]
#[should_panic(expected = "deadlock")]
fn abba_deadlock_is_detected() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (a.clone(), b.clone());
        let t = loom::thread::spawn(move || {
            let _ga = a1.lock().unwrap();
            let _gb = b1.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
}

/// `join` transfers the joined thread's clock: everything it did, even
/// Relaxed, is visible afterwards.
#[test]
fn join_transfers_clock() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let d2 = data.clone();
        let t = loom::thread::spawn(move || d2.store(9, Ordering::Relaxed));
        t.join().unwrap();
        assert_eq!(data.load(Ordering::Relaxed), 9);
    });
}

/// Scoped threads work like `std::thread::scope`, with joins modelled.
#[test]
fn scoped_threads_are_modelled() {
    loom::model(|| {
        let n = AtomicUsize::new(0);
        loom::thread::scope(|s| {
            let h1 = s.spawn(|| n.fetch_add(1, Ordering::AcqRel));
            let h2 = s.spawn(|| n.fetch_add(1, Ordering::AcqRel));
            h1.join().unwrap();
            h2.join().unwrap();
        });
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
}

/// The model visits *every* interleaving: two writers racing a single
/// overwrite means both final values must be seen across executions.
#[test]
fn exploration_covers_all_final_values() {
    let seen = Arc::new(StdAtomicU64::new(0));
    let seen2 = seen.clone();
    loom::model(move || {
        let v = Arc::new(AtomicUsize::new(0));
        let (v1, v2) = (v.clone(), v.clone());
        let t1 = loom::thread::spawn(move || v1.store(1, Ordering::Relaxed));
        let t2 = loom::thread::spawn(move || v2.store(2, Ordering::Relaxed));
        t1.join().unwrap();
        t2.join().unwrap();
        // Join covers both stores, so the load returns the final value
        // in modification order: 1 or 2 depending on the schedule.
        let last = v.load(Ordering::Relaxed);
        seen2.fetch_or(1u64 << last, StdOrdering::Relaxed);
    });
    assert_eq!(
        seen.load(StdOrdering::Relaxed) & 0b110,
        0b110,
        "exploration missed a final value"
    );
}

/// A preemption bound of zero still runs to completion (threads only
/// switch when they block or finish).
#[test]
fn preemption_bound_zero_completes() {
    let mut b = loom::model::Builder::new();
    b.preemption_bound = Some(0);
    b.check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let t = loom::thread::spawn(move || n2.fetch_add(1, Ordering::AcqRel));
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 1);
    });
}

/// Loom primitives refuse to run outside `loom::model`.
#[test]
#[should_panic(expected = "inside loom::model")]
fn primitives_require_model_context() {
    let _ = AtomicUsize::new(0);
}
