//! The model-checking runtime: a cooperative scheduler that serialises
//! model threads (real OS threads passing a baton), explores every
//! scheduling and load-value choice depth-first across repeated
//! executions, and tracks happens-before with vector clocks so stale
//! reads through insufficiently ordered atomics are actually produced.
//!
//! One model thread is *active* at a time. Every visible operation
//! (atomic access, mutex lock, join, yield) is a decision point: the
//! active thread asks the [`Explorer`] which runnable thread executes
//! next, hands over the baton, and waits until it is scheduled again.
//! Relaxed/acquire loads additionally branch on *which* store in the
//! modification order they observe (restricted by coherence and by the
//! reader's vector clock), which is what lets the checker catch
//! `Relaxed`-where-`Acquire/Release`-is-required bugs rather than only
//! interleaving bugs.
//!
//! Approximations versus real loom: `SeqCst` is modelled as `AcqRel`
//! (the single total order of SC operations is not tracked), condvars
//! and `UnsafeCell` access tracking are not implemented, and spurious
//! CAS failures are not generated. The models in this workspace rely on
//! none of those.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// Panic payload used to unwind model threads once an execution has
/// failed (or deadlocked): every thread parked at a decision point is
/// woken, panics with this token, and its wrapper swallows it.
pub(crate) struct Abandon;

/// A vector clock: component `t` is thread `t`'s logical time. Missing
/// components read as zero so clocks can grow as threads spawn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// `self` happens-before-or-equals `other` (pointwise `<=`).
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Pointwise maximum (join) of the two clocks, stored into `self`.
    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Advances component `tid` by one (a new event on that thread).
    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }
}

/// One recorded choice in the decision tree: how many alternatives the
/// point had and which one the current execution takes.
#[derive(Debug)]
struct Decision {
    choices: usize,
    index: usize,
}

/// Depth-first explorer over the decision tree. The path persists across
/// executions: a prefix is replayed, the first unexplored branch is
/// taken, and [`Explorer::advance`] backtracks to the next leaf.
#[derive(Debug)]
pub(crate) struct Explorer {
    path: Vec<Decision>,
    cursor: usize,
    max_branches: usize,
}

impl Explorer {
    fn new(max_branches: usize) -> Self {
        Explorer {
            path: Vec::new(),
            cursor: 0,
            max_branches,
        }
    }

    /// Consumes one decision point with `choices` alternatives and
    /// returns the index to take in this execution.
    fn decide(&mut self, choices: usize) -> usize {
        let idx = if self.cursor < self.path.len() {
            let d = &self.path[self.cursor];
            assert_eq!(
                d.choices, choices,
                "loom: nondeterministic model (decision point changed between executions)"
            );
            d.index
        } else {
            assert!(
                self.path.len() < self.max_branches,
                "loom: execution exceeded max_branches ({}); bound the model (shorter loops, fewer threads)",
                self.max_branches
            );
            self.path.push(Decision { choices, index: 0 });
            0
        };
        self.cursor += 1;
        idx
    }

    /// Backtracks to the next unexplored execution; `false` when the
    /// whole tree has been visited.
    fn advance(&mut self) -> bool {
        while let Some(d) = self.path.last_mut() {
            if d.index + 1 < d.choices {
                d.index += 1;
                self.cursor = 0;
                return true;
            }
            self.path.pop();
        }
        false
    }

    /// Short human-readable form of the current path, for failure
    /// reports.
    fn describe(&self) -> String {
        let ids: Vec<String> = self.path.iter().map(|d| d.index.to_string()).collect();
        format!("[{}]", ids.join(","))
    }
}

/// Why a thread cannot currently run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockedOn {
    /// Waiting to acquire the mutex with this object id.
    Mutex(usize),
    /// Waiting for this thread id to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Debug)]
struct ThreadSt {
    status: Status,
    clock: VClock,
}

/// One store in an atomic's modification order.
#[derive(Debug)]
struct StoreEvt {
    value: u64,
    /// The synchronises-with clock an acquire load of this store joins;
    /// `None` for relaxed stores (and initial values), which is exactly
    /// why acquiring a relaxed store publishes nothing.
    release: Option<VClock>,
    /// The storing thread's clock at the store, for coherence: a reader
    /// whose clock already covers a later store cannot read this one.
    when: VClock,
}

#[derive(Debug)]
struct AtomicObj {
    stores: Vec<StoreEvt>,
    /// Per-thread floor into `stores`: the newest index each thread has
    /// read or written (reads may never move backwards — coherence).
    seen: Vec<usize>,
}

impl AtomicObj {
    fn seen_mut(&mut self, tid: usize) -> &mut usize {
        if self.seen.len() <= tid {
            self.seen.resize(tid + 1, 0);
        }
        &mut self.seen[tid]
    }
}

#[derive(Debug)]
struct MutexObj {
    locked_by: Option<usize>,
    /// Clock released by the last unlock; joined on every acquisition.
    clock: VClock,
}

#[derive(Debug)]
enum Obj {
    Atomic(AtomicObj),
    Mutex(MutexObj),
}

/// Mutable model state, shared by every model thread of one execution.
struct State {
    threads: Vec<ThreadSt>,
    objs: Vec<Obj>,
    /// Thread currently holding the baton (`usize::MAX` once abandoned).
    active: usize,
    preemptions: usize,
    preemption_bound: Option<usize>,
    failed: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
    explorer: Explorer,
}

impl State {
    fn fail(&mut self, message: String) {
        if self.panic.is_none() {
            self.panic = Some(Box::new(message));
        }
        self.failed = true;
        self.active = usize::MAX;
    }

    fn atomic_mut(&mut self, obj: usize) -> &mut AtomicObj {
        match &mut self.objs[obj] {
            Obj::Atomic(a) => a,
            Obj::Mutex(_) => panic!("loom: object {obj} is not an atomic"),
        }
    }

    fn mutex_mut(&mut self, obj: usize) -> &mut MutexObj {
        match &mut self.objs[obj] {
            Obj::Mutex(m) => m,
            Obj::Atomic(_) => panic!("loom: object {obj} is not a mutex"),
        }
    }
}

/// One execution's shared scheduler: the state plus the condvar model
/// threads park on while another thread holds the baton.
pub(crate) struct Execution {
    state: StdMutex<State>,
    cv: Condvar,
    /// OS handles of non-scoped spawns, drained by the driver.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// `(execution, model thread id)` of the model thread running on
    /// this OS thread, if any.
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The current model thread's context; panics outside `loom::model`.
pub(crate) fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|(e, t)| (e.clone(), *t))
            .expect("loom primitives may only be used inside loom::model")
    })
}

fn lock_state(exec: &Execution) -> StdMutexGuard<'_, State> {
    exec.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn acquire_ish(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn release_ish(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Execution {
    fn new(explorer: Explorer, preemption_bound: Option<usize>) -> Self {
        Execution {
            state: StdMutex::new(State {
                threads: Vec::new(),
                objs: Vec::new(),
                active: 0,
                preemptions: 0,
                preemption_bound,
                failed: false,
                panic: None,
                explorer,
            }),
            cv: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    /// Registers a new model thread (child of `parent`, or the root when
    /// `parent` is `None`) and returns its id. Not a decision point: the
    /// child only becomes observable once it is first scheduled.
    pub(crate) fn thread_create(&self, parent: Option<usize>) -> usize {
        let mut st = lock_state(self);
        let tid = st.threads.len();
        let mut clock = match parent {
            Some(p) => {
                st.threads[p].clock.tick(p);
                st.threads[p].clock.clone()
            }
            None => VClock::default(),
        };
        clock.tick(tid);
        st.threads.push(ThreadSt {
            status: Status::Runnable,
            clock,
        });
        tid
    }

    /// Parks until `tid` holds the baton (a freshly spawned thread's
    /// first schedule-in). Panics with [`Abandon`] if the execution
    /// fails first.
    fn wait_until_active(&self, tid: usize) {
        let mut st = lock_state(self);
        while st.active != tid {
            if st.failed {
                drop(st);
                resume_unwind(Box::new(Abandon));
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The scheduling decision at a visible-operation boundary: chooses
    /// which runnable thread executes its next operation. Consumes an
    /// explorer decision only when there is a genuine choice. With a
    /// preemption bound, switching away from a still-runnable thread
    /// spends budget; forced switches (block/exit) are free.
    fn choose_next(&self, st: &mut State, current: usize, current_runnable: bool) {
        if st.failed {
            st.active = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Blocked(_)))
            {
                let blocked: Vec<(usize, Status)> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                    .map(|(i, t)| (i, t.status))
                    .collect();
                st.fail(format!(
                    "loom: deadlock — every unfinished thread is blocked: {blocked:?}"
                ));
            }
            self.cv.notify_all();
            return;
        }
        let out_of_budget = st.preemption_bound.is_some_and(|b| st.preemptions >= b);
        let choices: Vec<usize> =
            if current_runnable && out_of_budget && runnable.contains(&current) {
                vec![current]
            } else {
                runnable
            };
        let pick = if choices.len() == 1 {
            choices[0]
        } else {
            choices[st.explorer.decide(choices.len())]
        };
        if current_runnable && pick != current {
            st.preemptions += 1;
        }
        st.active = pick;
        self.cv.notify_all();
    }

    /// The entry point of every visible operation: offers the scheduler
    /// a switch, then parks until this thread is scheduled to perform
    /// the operation. Returns with the state lock held; the caller
    /// executes the operation under it (execution is serialised, so the
    /// operation is atomic).
    fn op_boundary(&self, tid: usize) -> StdMutexGuard<'_, State> {
        let mut st = lock_state(self);
        if st.failed {
            drop(st);
            resume_unwind(Box::new(Abandon));
        }
        debug_assert_eq!(st.active, tid, "loom: inactive thread reached an operation");
        self.choose_next(&mut st, tid, true);
        while st.active != tid {
            if st.failed {
                drop(st);
                resume_unwind(Box::new(Abandon));
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st
    }

    /// Blocks the current thread on `reason`, hands the baton elsewhere
    /// and parks until rescheduled (the waker resets the status to
    /// runnable). Returns with the lock held so the caller can re-try.
    fn block<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, State>,
        tid: usize,
        reason: BlockedOn,
    ) -> StdMutexGuard<'a, State> {
        st.threads[tid].status = Status::Blocked(reason);
        self.choose_next(&mut st, tid, false);
        while st.active != tid {
            if st.failed {
                drop(st);
                resume_unwind(Box::new(Abandon));
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st
    }

    /// Normal termination of a model thread: stamps the final clock,
    /// wakes joiners and hands the baton to the next runnable thread.
    fn thread_exit(&self, tid: usize) {
        let mut st = lock_state(self);
        st.threads[tid].clock.tick(tid);
        st.threads[tid].status = Status::Finished;
        for t in &mut st.threads {
            if t.status == Status::Blocked(BlockedOn::Join(tid)) {
                t.status = Status::Runnable;
            }
        }
        self.choose_next(&mut st, tid, false);
        self.cv.notify_all();
    }

    /// Termination of a thread that unwound with [`Abandon`]: only
    /// bookkeeping, no scheduling decisions (the execution is dead).
    fn thread_exit_abandoned(&self, tid: usize) {
        let mut st = lock_state(self);
        st.threads[tid].status = Status::Finished;
        st.active = usize::MAX;
        self.cv.notify_all();
    }

    /// Records the first real panic of the execution and switches every
    /// other thread into abandon mode.
    fn record_failure(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut st = lock_state(self);
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
        st.failed = true;
        st.threads[tid].status = Status::Finished;
        st.active = usize::MAX;
        self.cv.notify_all();
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h);
    }
}

// ---- model-thread entry ---------------------------------------------

/// Runs `body` as model thread `tid` of `exec`: installs the TLS
/// context, parks until first scheduled, and classifies the outcome
/// (normal exit / abandoned unwind / real failure). Never panics, so it
/// is safe as the top frame of scoped and free OS threads alike.
pub(crate) fn run_model_thread(exec: &Arc<Execution>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        exec.wait_until_active(tid);
        body();
    }));
    match outcome {
        Ok(()) => exec.thread_exit(tid),
        Err(p) if p.is::<Abandon>() => exec.thread_exit_abandoned(tid),
        Err(p) => exec.record_failure(tid, p),
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

// ---- operations (called from the sync/thread façades) ----------------

/// A pure scheduling point with no attached operation.
pub(crate) fn yield_now() {
    let (exec, tid) = ctx();
    let _st = exec.op_boundary(tid);
}

/// Model `join`: waits for `target` to finish, then joins its final
/// clock (the happens-before edge `join` provides).
pub(crate) fn thread_join(target: usize) {
    let (exec, tid) = ctx();
    let mut st = exec.op_boundary(tid);
    while st.threads[target].status != Status::Finished {
        st = exec.block(st, tid, BlockedOn::Join(target));
    }
    st.threads[tid].clock.tick(tid);
    let target_clock = st.threads[target].clock.clone();
    st.threads[tid].clock.join(&target_clock);
}

/// Non-panicking variant of [`thread_join`] for drop paths: does
/// nothing once the execution has failed.
pub(crate) fn thread_join_quiet(target: usize) {
    let (exec, _) = ctx();
    {
        let st = lock_state(&exec);
        if st.failed {
            return;
        }
    }
    thread_join(target);
}

/// Registers a new modelled atomic with an initial value. The initial
/// "store" carries the creator's clock (creation happens-before any
/// read that is ordered after it) but no release clock, mirroring
/// unsynchronised initialisation.
pub(crate) fn alloc_atomic(init: u64) -> usize {
    let (exec, tid) = ctx();
    let mut st = lock_state(&exec);
    st.threads[tid].clock.tick(tid);
    let when = st.threads[tid].clock.clone();
    st.objs.push(Obj::Atomic(AtomicObj {
        stores: vec![StoreEvt {
            value: init,
            release: None,
            when,
        }],
        seen: Vec::new(),
    }));
    st.objs.len() - 1
}

/// Registers a new modelled mutex.
pub(crate) fn alloc_mutex() -> usize {
    let (exec, tid) = ctx();
    let mut st = lock_state(&exec);
    st.threads[tid].clock.tick(tid);
    let clock = st.threads[tid].clock.clone();
    st.objs.push(Obj::Mutex(MutexObj {
        locked_by: None,
        clock,
    }));
    st.objs.len() - 1
}

/// Atomic load: picks (a decision, when several are coherent) which
/// store in the modification order to observe. Eligible stores form a
/// suffix: everything from the newest store the reader is already aware
/// of — via its clock or its own previous accesses — onwards. Acquire
/// loads join the chosen store's release clock, if any.
pub(crate) fn atomic_load(obj: usize, ord: Ordering) -> u64 {
    assert!(
        !matches!(ord, Ordering::Release | Ordering::AcqRel),
        "loom: invalid ordering for a load"
    );
    let (exec, tid) = ctx();
    let mut st = exec.op_boundary(tid);
    st.threads[tid].clock.tick(tid);
    let clock = st.threads[tid].clock.clone();
    let state = &mut *st;
    let a = state.atomic_mut(obj);
    let n = a.stores.len();
    let mut lo = *a.seen_mut(tid);
    for (j, s) in a.stores.iter().enumerate().skip(lo) {
        if s.when.le(&clock) {
            lo = j;
        }
    }
    let pick = if n - lo > 1 {
        lo + state.explorer.decide(n - lo)
    } else {
        lo
    };
    let a = state.atomic_mut(obj);
    *a.seen_mut(tid) = pick;
    let value = a.stores[pick].value;
    let rel = if acquire_ish(ord) {
        a.stores[pick].release.clone()
    } else {
        None
    };
    if let Some(rel) = rel {
        state.threads[tid].clock.join(&rel);
    }
    value
}

/// Atomic store: appends to the modification order; release stores
/// publish the storing thread's clock for later acquire loads.
pub(crate) fn atomic_store(obj: usize, value: u64, ord: Ordering) {
    assert!(
        !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
        "loom: invalid ordering for a store"
    );
    let (exec, tid) = ctx();
    let mut st = exec.op_boundary(tid);
    st.threads[tid].clock.tick(tid);
    let when = st.threads[tid].clock.clone();
    let release = release_ish(ord).then(|| when.clone());
    let a = st.atomic_mut(obj);
    a.stores.push(StoreEvt {
        value,
        release,
        when,
    });
    let idx = a.stores.len() - 1;
    *a.seen_mut(tid) = idx;
}

/// Atomic read-modify-write: reads the *latest* store (RMW atomicity
/// pins it to the tail of the modification order), applies `f`, and
/// appends the result. The new store continues the release sequence of
/// the store it read: its release clock is the union of the previous
/// store's release clock and — when the RMW itself releases — the
/// writer's own clock. A relaxed RMW therefore forwards an earlier
/// release clock but contributes none of its own.
pub(crate) fn atomic_rmw(obj: usize, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    let (exec, tid) = ctx();
    let mut st = exec.op_boundary(tid);
    st.threads[tid].clock.tick(tid);
    let state = &mut *st;
    let a = state.atomic_mut(obj);
    let last = a.stores.len() - 1;
    let old = a.stores[last].value;
    let prev_release = a.stores[last].release.clone();
    if acquire_ish(ord) {
        if let Some(rel) = &prev_release {
            state.threads[tid].clock.join(rel);
        }
    }
    let when = state.threads[tid].clock.clone();
    let release = if release_ish(ord) {
        let mut r = prev_release.unwrap_or_default();
        r.join(&when);
        Some(r)
    } else {
        prev_release
    };
    let a = state.atomic_mut(obj);
    a.stores.push(StoreEvt {
        value: f(old),
        release,
        when,
    });
    let idx = a.stores.len() - 1;
    *a.seen_mut(tid) = idx;
    old
}

/// Atomic compare-exchange: an RMW when the latest value matches
/// `current`, otherwise a load of the latest value with `failure`
/// ordering semantics.
pub(crate) fn atomic_cas(
    obj: usize,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let (exec, tid) = ctx();
    let mut st = exec.op_boundary(tid);
    st.threads[tid].clock.tick(tid);
    let state = &mut *st;
    let a = state.atomic_mut(obj);
    let last = a.stores.len() - 1;
    let old = a.stores[last].value;
    let prev_release = a.stores[last].release.clone();
    if old == current {
        if acquire_ish(success) {
            if let Some(rel) = &prev_release {
                state.threads[tid].clock.join(rel);
            }
        }
        let when = state.threads[tid].clock.clone();
        let release = if release_ish(success) {
            let mut r = prev_release.unwrap_or_default();
            r.join(&when);
            Some(r)
        } else {
            prev_release
        };
        let a = state.atomic_mut(obj);
        a.stores.push(StoreEvt {
            value: new,
            release,
            when,
        });
        let idx = a.stores.len() - 1;
        *a.seen_mut(tid) = idx;
        Ok(old)
    } else {
        // A failed CAS still observed the latest value.
        *a.seen_mut(tid) = last;
        if acquire_ish(failure) {
            if let Some(rel) = &prev_release {
                state.threads[tid].clock.join(rel);
            }
        }
        Err(old)
    }
}

/// Mutex acquisition: blocks while held, joins the mutex clock on
/// success (the release/acquire edge every unlock→lock pair gives).
pub(crate) fn mutex_lock(obj: usize) {
    let (exec, tid) = ctx();
    let mut st = exec.op_boundary(tid);
    loop {
        let m = st.mutex_mut(obj);
        match m.locked_by {
            None => {
                m.locked_by = Some(tid);
                let mclock = m.clock.clone();
                st.threads[tid].clock.tick(tid);
                st.threads[tid].clock.join(&mclock);
                return;
            }
            Some(owner) => {
                assert_ne!(owner, tid, "loom: recursive mutex lock would deadlock");
                st = exec.block(st, tid, BlockedOn::Mutex(obj));
            }
        }
    }
}

/// Mutex release: publishes the holder's clock into the mutex and wakes
/// waiters. Not a decision point (release is not a read), and
/// deliberately non-panicking so guard drops are safe mid-abandon.
pub(crate) fn mutex_unlock(obj: usize) {
    let (exec, tid) = ctx();
    let mut st = lock_state(&exec);
    if st.failed {
        return;
    }
    st.threads[tid].clock.tick(tid);
    let clock = st.threads[tid].clock.clone();
    let m = st.mutex_mut(obj);
    debug_assert_eq!(m.locked_by, Some(tid), "loom: unlock by non-owner");
    m.locked_by = None;
    m.clock = clock;
    for t in &mut st.threads {
        if t.status == Status::Blocked(BlockedOn::Mutex(obj)) {
            t.status = Status::Runnable;
        }
    }
    exec.cv.notify_all();
}

// ---- driver ----------------------------------------------------------

/// Configuration for the exploration: see [`crate::model::Builder`].
#[derive(Debug, Clone)]
pub(crate) struct Config {
    pub(crate) preemption_bound: Option<usize>,
    pub(crate) max_executions: u64,
    pub(crate) max_branches: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: None,
            max_executions: 2_000_000,
            max_branches: 50_000,
        }
    }
}

/// Explores every schedule of `f` within the configured bounds,
/// re-panicking with the original payload if any execution fails.
pub(crate) fn explore<F>(cfg: &Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut explorer = Explorer::new(cfg.max_branches);
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= cfg.max_executions,
            "loom: exceeded max_executions ({}); bound the model",
            cfg.max_executions
        );
        let exec = Arc::new(Execution::new(explorer, cfg.preemption_bound));
        let root = exec.thread_create(None);
        debug_assert_eq!(root, 0);
        let main = {
            let exec = exec.clone();
            let f = f.clone();
            std::thread::spawn(move || run_model_thread(&exec, 0, move || f()))
        };
        let _ = main.join();
        // Free-spawned threads may still be finishing (they schedule
        // among themselves once the root exits); join their OS handles,
        // including any they spawned in turn.
        loop {
            let handles: Vec<_> = exec
                .os_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drain(..)
                .collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let state = match Arc::try_unwrap(exec) {
            Ok(e) => e.state.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(_) => panic!("loom: execution state leaked out of the model"),
        };
        explorer = state.explorer;
        if let Some(payload) = state.panic {
            eprintln!(
                "loom: failing execution found after {executions} run(s), schedule {}",
                explorer.describe()
            );
            resume_unwind(payload);
        }
        if !explorer.advance() {
            break;
        }
    }
}
