//! Spin-loop hints. Under the model a spin hint is a scheduling point:
//! the spinning thread yields so the thread it is waiting on can make
//! progress (a real CPU hint would model nothing).

/// Yields the model baton; drop-in for `std::hint::spin_loop`.
pub fn spin_loop() {
    crate::rt::yield_now();
}
