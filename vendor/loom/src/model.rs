//! Exploration entry points: [`model`] and the tunable [`Builder`].

use crate::rt;

/// Configures and runs a model-checking exploration.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per execution
    /// (CHESS-style bounding). `None` explores every schedule.
    pub preemption_bound: Option<usize>,
    /// Safety valve on the number of executions explored.
    pub max_executions: u64,
    /// Safety valve on decision points within one execution; a model
    /// with an unbounded spin loop trips this instead of hanging.
    pub max_branches: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let d = rt::Config::default();
        Builder {
            preemption_bound: d.preemption_bound,
            max_executions: d.max_executions,
            max_branches: d.max_branches,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Explores every permitted schedule of `f`, panicking with the
    /// first failing execution's panic payload (after printing the
    /// schedule that reached it).
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let cfg = rt::Config {
            preemption_bound: self.preemption_bound,
            max_executions: self.max_executions,
            max_branches: self.max_branches,
        };
        rt::explore(&cfg, f);
    }
}

/// Runs `f` under the model checker with default bounds (exhaustive).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}
