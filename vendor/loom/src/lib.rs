//! Offline vendored stand-in for [loom](https://github.com/tokio-rs/loom),
//! API-compatible with the subset this workspace models.
//!
//! `loom::model` runs a closure under a bounded-exhaustive model
//! checker: every interleaving of the model threads' visible operations
//! (atomic accesses, mutex operations, joins, yields) is explored
//! depth-first, and atomic loads additionally branch over every store
//! they could coherently observe. Happens-before is tracked with vector
//! clocks, so a load that is *not* ordered after a store genuinely can
//! return the stale value — which is how missing `Acquire`/`Release`
//! pairs are caught as real assertion failures instead of lucky passes.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let flag = Arc::new(AtomicUsize::new(0));
//!     let f2 = flag.clone();
//!     let t = loom::thread::spawn(move || f2.store(1, Ordering::Release));
//!     let _ = flag.load(Ordering::Acquire);
//!     t.join().unwrap();
//! });
//! ```
//!
//! Known approximations (documented in [`rt`]): `SeqCst` is treated as
//! `AcqRel`, there are no spurious `compare_exchange_weak` failures,
//! and condvars/`UnsafeCell` access tracking are not implemented.

mod rt;

pub mod hint;
pub mod model;
pub mod sync;
pub mod thread;

pub use model::model;
