//! Modelled threads: free spawns, scoped spawns, joins and yields.
//!
//! Every spawned closure runs on a real OS thread, but only while it
//! holds the scheduler baton, so execution is fully serialised and the
//! interleaving is chosen by the explorer. `join` contributes the
//! usual happens-before edge (the joiner's clock absorbs the joined
//! thread's final clock).

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::rt;

/// Hands the baton to the scheduler without performing an operation —
/// a pure interleaving point, like `std::thread::yield_now`.
pub fn yield_now() {
    rt::yield_now();
}

/// Handle to a free (non-scoped) model thread.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
}

/// Spawns a model thread. The backing OS thread is joined by the model
/// driver at the end of the execution, so dropping the handle detaches
/// the model thread exactly like `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = rt::ctx();
    let tid = exec.thread_create(Some(parent));
    let slot = Arc::new(StdMutex::new(None));
    let slot2 = slot.clone();
    let exec2 = exec.clone();
    let os = std::thread::spawn(move || {
        rt::run_model_thread(&exec2, tid, move || {
            let v = f();
            *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
        });
    });
    exec.push_os_handle(os);
    JoinHandle { tid, slot }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. A panic in
    /// the thread fails the whole model, so the `Err` arm is only
    /// reachable in degenerate abandon races.
    pub fn join(self) -> std::thread::Result<T> {
        rt::thread_join(self.tid);
        match self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(v) => Ok(v),
            None => Err(Box::new("loom: joined thread produced no value")),
        }
    }
}

/// Scoped-spawn environment; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped model thread.
///
/// Dropping the handle without joining performs a *model* join (quietly
/// skipped once the execution has failed). This is required for
/// soundness, not just tidiness: `std::thread::scope` blocks the OS
/// thread at scope exit while the parent still holds the scheduler
/// baton, so any scoped thread left model-unjoined there would deadlock
/// the checker itself.
pub struct ScopedJoinHandle<'scope, T> {
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
    joined: bool,
    _marker: PhantomData<&'scope ()>,
}

/// Drop-in for `std::thread::scope`, backed by the real thing: scoped
/// OS threads are created underneath, but scheduling and joins go
/// through the model.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    })
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let (exec, parent) = rt::ctx();
        let tid = exec.thread_create(Some(parent));
        let slot = Arc::new(StdMutex::new(None));
        let slot2 = slot.clone();
        self.inner.spawn(move || {
            rt::run_model_thread(&exec, tid, move || {
                let v = f();
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            });
        });
        ScopedJoinHandle {
            tid,
            slot,
            joined: false,
            _marker: PhantomData,
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its value; see
    /// [`JoinHandle::join`] for the `Err` arm.
    pub fn join(mut self) -> std::thread::Result<T> {
        self.joined = true;
        rt::thread_join(self.tid);
        match self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(v) => Ok(v),
            None => Err(Box::new("loom: joined thread produced no value")),
        }
    }
}

impl<T> Drop for ScopedJoinHandle<'_, T> {
    fn drop(&mut self) {
        if !self.joined {
            // Swallow an Abandon unwind: this drop may itself run during
            // an unwind, and a second panic would abort the process.
            let tid = self.tid;
            let _ = catch_unwind(AssertUnwindSafe(|| rt::thread_join_quiet(tid)));
        }
    }
}
