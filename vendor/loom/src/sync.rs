//! Modelled synchronisation primitives: `Mutex` and the atomics.
//!
//! Each primitive registers an object with the runtime at construction
//! (so construction is only legal inside `loom::model`) and routes
//! every access through a scheduler decision point. The data itself
//! lives in ordinary `std` containers — safe because the model
//! serialises execution and grants access only per the modelled
//! protocol.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

use crate::rt;

pub use std::sync::Arc;

/// Modelled mutex. Lock acquisition is a blocking decision point and an
/// acquire of the clock published by the previous unlock; unlocking
/// publishes the holder's clock.
pub struct Mutex<T> {
    id: usize,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        Mutex {
            id: rt::alloc_mutex(),
            data: StdMutex::new(data),
        }
    }

    /// Never returns `Err`: model mutexes do not poison (a panic while
    /// holding one fails the whole model instead).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::mutex_lock(self.id);
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard {
            id: self.id,
            inner: Some(inner),
        })
    }

    /// Consumes the mutex; ownership proves exclusive access, so this
    /// is not a modelled operation.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self
            .data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

/// Guard for a [`Mutex`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    id: usize,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("loom: guard accessed after release"),
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("loom: guard accessed after release"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model lock so the data is
        // never reachable while the model still considers it owned.
        self.inner = None;
        rt::mutex_unlock(self.id);
    }
}

pub mod atomic {
    //! Modelled atomics over a `u64` core. Loads branch over every
    //! store they could coherently observe; only release stores carry a
    //! clock for acquire loads to join — which is how missing orderings
    //! become observable stale reads.

    use crate::rt;

    pub use std::sync::atomic::Ordering;

    macro_rules! modelled_atomic {
        ($(#[$doc:meta])* $name:ident, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug)]
            pub struct $name {
                id: usize,
            }

            impl $name {
                #[allow(clippy::unnecessary_cast)]
                pub fn new(value: $prim) -> Self {
                    $name {
                        id: rt::alloc_atomic(value as u64),
                    }
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn load(&self, order: Ordering) -> $prim {
                    rt::atomic_load(self.id, order) as $prim
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn store(&self, value: $prim, order: Ordering) {
                    rt::atomic_store(self.id, value as u64, order);
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    rt::atomic_rmw(self.id, order, |_| value as u64) as $prim
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    rt::atomic_rmw(self.id, order, |old| {
                        old.wrapping_add(value as u64)
                    }) as $prim
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    rt::atomic_rmw(self.id, order, |old| {
                        old.wrapping_sub(value as u64)
                    }) as $prim
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::atomic_cas(self.id, current as u64, new as u64, success, failure)
                        .map(|v| v as $prim)
                        .map_err(|v| v as $prim)
                }

                /// The model generates no spurious failures, so `_weak`
                /// is the strong variant.
                #[allow(clippy::unnecessary_cast)]
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    modelled_atomic!(
        /// Modelled `std::sync::atomic::AtomicUsize`.
        AtomicUsize,
        usize
    );
    modelled_atomic!(
        /// Modelled `std::sync::atomic::AtomicU64`.
        AtomicU64,
        u64
    );
    modelled_atomic!(
        /// Modelled `std::sync::atomic::AtomicU32`.
        AtomicU32,
        u32
    );

    /// Modelled `std::sync::atomic::AtomicBool` (stored as 0/1).
    #[derive(Debug)]
    pub struct AtomicBool {
        id: usize,
    }

    impl AtomicBool {
        pub fn new(value: bool) -> Self {
            AtomicBool {
                id: rt::alloc_atomic(u64::from(value)),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            rt::atomic_load(self.id, order) != 0
        }

        pub fn store(&self, value: bool, order: Ordering) {
            rt::atomic_store(self.id, u64::from(value), order);
        }

        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            rt::atomic_rmw(self.id, order, |_| u64::from(value)) != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::atomic_cas(
                self.id,
                u64::from(current),
                u64::from(new),
                success,
                failure,
            )
            .map(|v| v != 0)
            .map_err(|v| v != 0)
        }
    }
}
