//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`/`criterion_main!` — with a much simpler engine: each
//! benchmark body is warmed up once and then timed over a fixed number of
//! iterations, reporting the mean wall-clock time per iteration. There is
//! no statistical analysis, HTML report, or baseline comparison; the
//! numbers are indicative only.

#![forbid(unsafe_code)]

use std::fmt::Display;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

const MIN_ITERS: u32 = 10;
const TARGET_TIME: Duration = Duration::from_millis(300);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), &mut body);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), &mut |b: &mut Bencher| {
            body(b, input);
        });
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Units-of-work declaration (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark bodies; `iter` times a closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `body`, accumulating the per-iteration mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and calibration pass.
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed();
        let iters = if once.is_zero() {
            1_000
        } else {
            let fit = TARGET_TIME.as_nanos() / once.as_nanos().max(1);
            u32::try_from(fit)
                .unwrap_or(u32::MAX)
                .clamp(MIN_ITERS, 100_000)
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Times `body(input)` where `setup()` builds a fresh input per
    /// iteration; only the `body` portion is measured.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut body: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up and calibration pass (body time only).
        let input = setup();
        let start = Instant::now();
        black_box(body(input));
        let once = start.elapsed();
        let iters = if once.is_zero() {
            1_000
        } else {
            let fit = TARGET_TIME.as_nanos() / once.as_nanos().max(1);
            u32::try_from(fit)
                .unwrap_or(u32::MAX)
                .clamp(MIN_ITERS, 100_000)
        };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(body(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, body: &mut F) {
    let mut b = Bencher::default();
    body(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
    } else {
        let per_iter = b.total.as_nanos() / u128::from(b.iters);
        println!("{name:<40} {per_iter:>12} ns/iter ({} iters)", b.iters);
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
