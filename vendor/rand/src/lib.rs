//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! tiny slice of `rand`'s API that P-Store actually uses: a seedable
//! `StdRng` plus `random_range` over integer and float ranges. The
//! generator is xoshiro256++ seeded through SplitMix64, which is more than
//! adequate for the deterministic workload/trace generation this repo does
//! (it is *not* a cryptographic generator, and neither is upstream
//! `StdRng`'s use here).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Ranges that can be sampled uniformly for values of type `T`. The extra
/// type parameter (rather than an associated type) plus the single blanket
/// impl per range shape lets the output type drive inference of integer
/// range literals, exactly as upstream `rand` does.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Element types with a uniform sampler.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore>(lo: $t, hi: $t, rng: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn sample_inclusive<G: RngCore>(lo: $t, hi: $t, rng: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore>(lo: $t, hi: $t, rng: &mut G) -> $t {
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
            fn sample_inclusive<G: RngCore>(lo: $t, hi: $t, rng: &mut G) -> $t {
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<G: RngCore>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform_over_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
