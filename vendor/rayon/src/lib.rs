//! Offline vendored stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this crate implements
//! just the surface `pstore-bench`'s sweep runner uses, on plain
//! `std::thread`:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — `new()`, `num_threads()`,
//!   `build()`, `install()`, and per-pool `current_num_threads()`.
//! * [`current_num_threads`] — the installed pool's size, else the
//!   `RAYON_NUM_THREADS` environment variable, else the machine's
//!   available parallelism.
//! * `Vec<T>::into_par_iter().map(f).collect::<Vec<R>>()` via
//!   [`prelude`] — an eager, order-preserving parallel map.
//!
//! Unlike real rayon there is no work-stealing deque: `collect` spawns
//! scoped worker threads that pull item indices from a shared atomic
//! counter and the results are reassembled in input order, so output
//! ordering is deterministic regardless of scheduling. Workers are real
//! OS threads even for a one-thread pool, which keeps thread-local state
//! (e.g. telemetry sinks) behaving identically at every pool size.
//!
//! Swap back to the registry `rayon` if the build ever gains network
//! access; the call sites compile unchanged against the real API.

#![forbid(unsafe_code)]

use std::cell::Cell;

use crate::sync::{AtomicUsize, Mutex, Ordering};

pub mod sync {
    //! The synchronisation primitives the pool is built on.
    //!
    //! Under `--cfg loom` every primitive (and `thread::scope`) is the
    //! `loom` model-checked variant, so `pstore-verify`'s CON models
    //! (`tests/loom_models.rs`) explore every interleaving of the real
    //! [`crate::parallel_map`] implementation rather than a
    //! transliteration of it. Normal builds use `std` directly; the two
    //! APIs are call-compatible for the subset used here.
    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicUsize, Ordering};
    #[cfg(loom)]
    pub use loom::sync::Mutex;
    #[cfg(loom)]
    pub use loom::thread;

    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicUsize, Ordering};
    #[cfg(not(loom))]
    pub use std::sync::Mutex;
    #[cfg(not(loom))]
    pub use std::thread;
}

pub mod prelude {
    //! Traits that make `.into_par_iter()` available, mirroring
    //! `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Size of the pool whose `install` scope we are inside, if any.
    static CURRENT_POOL: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Resolves the default thread count: `RAYON_NUM_THREADS` if set to a
/// positive integer, else `std::thread::available_parallelism()`.
fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The number of threads the current thread pool uses: the enclosing
/// [`ThreadPool::install`] scope's size, else the global default.
pub fn current_num_threads() -> usize {
    CURRENT_POOL
        .with(|c| c.get())
        .unwrap_or_else(default_num_threads)
}

/// Error building a thread pool. The stand-in never fails to build; the
/// type exists so call sites can keep real rayon's `Result` handling.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; 0 means "use the default" as in real rayon.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in; the `Result` mirrors real rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A fixed-size thread pool. The stand-in holds no persistent worker
/// threads — workers are spawned per parallel call — but the observable
/// behaviour (parallelism degree, deterministic collect order) matches.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool installed as the current pool: parallel
    /// iterators inside use this pool's thread count.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_POOL.with(|c| c.replace(Some(self.num_threads)));
        // Restore on unwind too, so a panicking op cannot leak the
        // override into unrelated code on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                CURRENT_POOL.with(|c| c.set(prev));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator` for the types the workspace uses.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The parallel-iterator operations the workspace uses: `map` followed
/// by an order-preserving `collect`.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Consumes the iterator, producing all items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each element through `f` (applied on worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects the results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator (the `map` adapter).
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        parallel_map(current_num_threads(), self.base.run(), &self.f)
    }
}

/// Applies `f` to every item on up to `threads` scoped worker threads,
/// returning results in input order. Workers claim indices from a shared
/// counter; each result is tagged with its index and the tagged results
/// are sorted back into input order, so the output is identical at any
/// thread count. Worker panics propagate to the caller.
///
/// Public so the `loom` interleaving models (`tests/loom_models.rs`,
/// compiled under `--cfg loom`) can model-check this exact
/// implementation; ordinary callers should go through the parallel
/// iterator API.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    // Hand items to workers through take-once slots: safe-code ownership
    // transfer without relying on a work-stealing deque.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = sync::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let slots = &slots;
                let next = &next;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take();
                        if let Some(item) = item {
                            local.push((i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

// The std-backed tests exercise real threading and env-dependent pool
// sizing; under `--cfg loom` the crate is built for model checking and
// only `tests/loom_models.rs` applies.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<i64> = pool.install(|| {
            (0..100)
                .collect::<Vec<i64>>()
                .into_par_iter()
                .map(|x| x * 2)
                .collect()
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn single_thread_pool_matches_serial() {
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let pool8 = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let items: Vec<u64> = (0..37).collect();
        let a: Vec<u64> = pool1.install(|| items.clone().into_par_iter().map(|x| x * x).collect());
        let b: Vec<u64> = pool8.install(|| items.into_par_iter().map(|x| x * x).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn install_scopes_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
        // Outside the scope the default applies again.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u8> = vec![1u8, 2, 3]
                .into_par_iter()
                .map(|x| {
                    assert!(x < 3, "boom");
                    x
                })
                .collect();
        });
        assert!(result.is_err());
    }

    #[test]
    fn zero_num_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
