//! Loom interleaving models for the sweep's concurrency surface
//! (ROADMAP: "concurrency checking of exactly the sweep surface").
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rayon --release
//! ```
//!
//! Three invariants are modelled, mirrored as `CON-01..CON-03` runtime
//! checks in `pstore-verify`:
//!
//! * **CON-01** — work-queue pop/execute/store-result ordering: the
//!   pool's claim-counter + take-once-slot protocol executes every item
//!   exactly once and reassembles results in input order, under every
//!   interleaving. Checked against the *real* [`rayon::parallel_map`]
//!   (its primitives are loom types under this cfg), not a model of it.
//! * **CON-02** — the "all results present before the ordered merge
//!   starts" happens-before edge: result slots written `Relaxed` are
//!   safely published by a `Release` completion count acquired by the
//!   merge thread.
//! * **CON-03** — telemetry-registry isolation when one worker runs two
//!   cells back-to-back: per-worker registries with the reset/snapshot/
//!   reset discipline of `pstore_bench::sweep::run_cell` never leak one
//!   cell's metrics into another's snapshot.
//!
//! Each invariant has a negative twin seeding the bug the model must
//! catch (`Relaxed` where `Acquire/Release` is required, a torn
//! load/store claim, a shared registry), asserting the checker has the
//! discriminating power the positive results rely on.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

// ---- CON-01: work-queue pop / execute / store-result ----------------

/// The real pool, model-checked: 2 workers racing over 3 items must
/// produce every result, in input order, in every interleaving.
#[test]
fn con_01_parallel_map_executes_each_item_once_in_order() {
    loom::model(|| {
        let out = rayon::parallel_map(2, vec![10u64, 20, 30], &|x| x + 1);
        assert_eq!(out, vec![11, 21, 31], "CON-01: lost or reordered item");
    });
}

/// Negative twin: replace the atomic claim (`fetch_add`) with a torn
/// load/store pair and the model must find the double-execution.
#[test]
#[should_panic(expected = "CON-01 seeded bug")]
fn con_01_torn_claim_is_caught() {
    loom::model(|| {
        let next = Arc::new(AtomicUsize::new(0));
        let executed = Arc::new(AtomicUsize::new(0));
        let n = 2;
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (next, executed) = (next.clone(), executed.clone());
                loom::thread::spawn(move || loop {
                    // Seeded bug: a non-atomic claim protocol.
                    let i = next.load(Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    next.store(i + 1, Ordering::Relaxed);
                    executed.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            executed.load(Ordering::Relaxed),
            n,
            "CON-01 seeded bug: torn claim executed an item more than once"
        );
    });
}

// ---- CON-02: results visible before the ordered merge ----------------

/// Shared state of the merge model: one result slot per cell plus the
/// completion counter the merge thread waits on.
fn merge_model(claim_order: Ordering) {
    let slots = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2usize)
        .map(|w| {
            let (slots, done) = (slots.clone(), done.clone());
            loom::thread::spawn(move || {
                // Store the result relaxed: publication safety must come
                // from the completion counter alone.
                slots[w].store(w + 1, Ordering::Relaxed);
                done.fetch_add(1, claim_order);
            })
        })
        .collect();
    // The merge thread: bounded poll, then assert only in executions
    // where both completions were observed.
    for _ in 0..3 {
        if done.load(Ordering::Acquire) == 2 {
            assert_eq!(slots[0].load(Ordering::Relaxed), 1, "CON-02 stale slot");
            assert_eq!(slots[1].load(Ordering::Relaxed), 2, "CON-02 stale slot");
            break;
        }
        loom::thread::yield_now();
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// `Release` completion signals: once the merge acquires both, every
/// result slot is visible. Exhaustive.
#[test]
fn con_02_merge_observes_all_results() {
    loom::model(|| merge_model(Ordering::Release));
}

/// Negative twin: downgrade the completion signal to `Relaxed` and the
/// merge can observe `done == 2` while a slot is still stale — the
/// exact bug class CON-02 exists to exclude.
#[test]
#[should_panic(expected = "CON-02 stale slot")]
fn con_02_relaxed_completion_is_caught() {
    loom::model(|| merge_model(Ordering::Relaxed));
}

// ---- CON-03: registry isolation across back-to-back cells ------------

/// One cell's slice of `run_cell`'s registry discipline, against a
/// worker-local registry: start clean, record, snapshot, reset.
fn run_cell_model(reg: &Mutex<u64>, contribution: u64) -> u64 {
    {
        let before = *reg.lock().unwrap();
        assert_eq!(before, 0, "CON-03 leak: cell started on a dirty registry");
    }
    {
        let mut g = reg.lock().unwrap();
        *g += contribution;
    }
    let snapshot = *reg.lock().unwrap();
    {
        let mut g = reg.lock().unwrap();
        *g = 0;
    }
    snapshot
}

/// Worker A runs two cells back-to-back on its thread-local registry
/// while worker B runs a third on its own; no interleaving may leak one
/// cell's metrics into another cell's view or snapshot.
#[test]
fn con_03_back_to_back_cells_see_clean_registries() {
    loom::model(|| {
        let a = loom::thread::spawn(|| {
            // Thread-local registry: created on (and confined to) the
            // worker, exactly like pstore-telemetry's.
            let reg = Mutex::new(0u64);
            let s0 = run_cell_model(&reg, 3);
            let s1 = run_cell_model(&reg, 5);
            (s0, s1)
        });
        let b = loom::thread::spawn(|| {
            let reg = Mutex::new(0u64);
            run_cell_model(&reg, 7)
        });
        let (s0, s1) = a.join().unwrap();
        let s2 = b.join().unwrap();
        assert_eq!(
            (s0, s1, s2),
            (3, 5, 7),
            "CON-03: snapshot polluted by another cell"
        );
    });
}

/// Negative twin: make the registry process-global instead of
/// thread-local and the model finds the interleaving where one worker's
/// metrics leak into the other's cell — the bug class the thread-local
/// design excludes.
#[test]
#[should_panic(expected = "CON-03 leak")]
fn con_03_shared_registry_leak_is_caught() {
    loom::model(|| {
        let reg = Arc::new(Mutex::new(0u64));
        let (r1, r2) = (reg.clone(), reg.clone());
        let a = loom::thread::spawn(move || run_cell_model(&r1, 3));
        let b = loom::thread::spawn(move || run_cell_model(&r2, 5));
        a.join().unwrap();
        b.join().unwrap();
    });
}
