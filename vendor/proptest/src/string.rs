//! Regex-lite string strategies: a `&str` pattern acts as a strategy, as
//! in real proptest. Only the subset the workspace uses is supported:
//! literal characters, character classes like `[a-z0-9_]`, `.`, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (star/plus capped at 8
//! repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    AnyPrintable,
}

#[derive(Debug, Clone)]
struct Term {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Term> {
    let mut chars = pattern.chars().peekable();
    let mut terms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in pattern {pattern:?}");
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap_or('-');
                            let hi = chars.next().unwrap_or('-');
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(ranges)
            }
            '.' => Atom::AnyPrintable,
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            c => Atom::Literal(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().unwrap_or(0);
                        let hi = hi.trim().parse().unwrap_or(lo + UNBOUNDED_CAP);
                        (lo, hi)
                    }
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        terms.push(Term { atom, min, max });
    }
    terms
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyPrintable => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' '),
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32 + 1))
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let width = u64::from(hi as u32 - lo as u32 + 1);
                if pick < width {
                    #[allow(clippy::cast_possible_truncation)]
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= width;
            }
            unreachable!("pick is bounded by the total class width")
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for term in parse(self) {
            let reps = term.min + rng.below(u64::from(term.max - term.min) + 1) as u32;
            for _ in 0..reps {
                out.push(sample_atom(&term.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(5);
        let s = "ab[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
