//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of one type from a random stream.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// returns a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a bounded number
    /// of times). `_label` mirrors proptest's signature and is unused.
    fn prop_filter<F>(self, _label: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
