//! The deterministic RNG and per-test configuration.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// xoshiro256++, seeded deterministically from the test name so that every
/// run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_test_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a 64-bit value via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
