//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so this crate re-implements
//! the subset of proptest's API the workspace uses: the [`proptest!`]
//! macro, range/tuple/regex-lite/collection strategies, `prop_map`,
//! `prop_oneof!`, `any::<T>()`, and the `prop_assert*` macros. Test cases
//! are generated from a deterministic per-test RNG (seeded by the test
//! name), so failures reproduce across runs. There is **no shrinking**:
//! a failing case reports the generated inputs as-is.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `name(arg in strategy, ...)` block runs
/// `ProptestConfig::cases` times with deterministically-seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_test_name(stringify!($name));
                for case in 0..config.cases {
                    let case_rng = &mut rng;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), case_rng);)*
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case}/{} failed in `{}`",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
