#!/usr/bin/env bash
# Sanitizer sweep for the concurrency-bearing code paths. Run from the
# repository root:
#
#   scripts/sanitizers.sh            # thread + address sanitizers
#   scripts/sanitizers.sh thread     # one sanitizer only
#
# ThreadSanitizer exercises the *real* thread interleavings that the loom
# models explore symbolically: the vendored rayon pool, the fault-injected
# parallel sweeps, and the telemetry sink/exposer handoff. AddressSanitizer
# covers the same targets for memory errors that miri cannot reach once
# real threads are involved.
#
# Requirements (both checked; the script SKIPS cleanly when absent, like
# the miri step of static_analysis.sh, so offline toolchains still pass):
#   * a nightly toolchain (`-Zsanitizer` / `-Zbuild-std` are unstable);
#   * the nightly `rust-src` component (std must be rebuilt instrumented).

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZERS=("${@:-thread}")
if [[ $# -eq 0 ]]; then
    SANITIZERS=(thread address)
fi

step() {
    echo
    echo "==> $*"
}

if ! cargo +nightly --version > /dev/null 2>&1; then
    step "sanitizers: skipped (no nightly toolchain installed)"
    exit 0
fi
SYSROOT="$(rustc +nightly --print sysroot)"
if [[ ! -d "$SYSROOT/lib/rustlib/src/rust/library" ]]; then
    step "sanitizers: skipped (nightly rust-src component not installed)"
    exit 0
fi
HOST="$(rustc +nightly -vV | sed -n 's/^host: //p')"

# The sanitizer-instrumented targets. Each entry is "<cargo args>": the
# vendored pool's own tests, the fault-injected sweep suite that drives
# it from pstore-bench, the telemetry sink/exposer tests, and the
# sharded execution engine (mailbox handoff, reconfig fence, panic
# propagation across the coordinator/shard threads).
TARGETS=(
    "-p rayon --lib"
    "-p pstore-bench --lib"
    "-p pstore-telemetry --lib"
    "-p pstore-dbms --lib"
    "-p pstore-dbms --test sharded_engine"
)

for SAN in "${SANITIZERS[@]}"; do
    for T in "${TARGETS[@]}"; do
        step "cargo +nightly test ($SAN sanitizer) $T"
        # -Zbuild-std rebuilds std instrumented so the sanitizer sees
        # through its synchronisation primitives; separate target dirs
        # keep the per-sanitizer caches from clobbering each other.
        # shellcheck disable=SC2086
        RUSTFLAGS="-Zsanitizer=$SAN" \
        CARGO_TARGET_DIR="target/san-$SAN" \
            cargo +nightly test -q -Zbuild-std --target "$HOST" $T
    done
    step "pstore-verify sweep incl. ISO serializability phase ($SAN sanitizer)"
    # The full invariant sweep (sharded-engine byte-identity plus the
    # ISO-01..03 key-level history phase at shards 1/2/4) under real
    # instrumented threads: key-version capture crosses the
    # coordinator/shard mailboxes, so the sanitizer sees the complete
    # handoff of sampled read/write sets.
    RUSTFLAGS="-Zsanitizer=$SAN" \
    CARGO_TARGET_DIR="target/san-$SAN" \
        cargo +nightly run -q -Zbuild-std --target "$HOST" \
        -p pstore-verify --features telemetry
done

echo
echo "sanitizers: all checks passed"
