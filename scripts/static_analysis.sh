#!/usr/bin/env bash
# Static-analysis gate for the workspace. Run from the repository root.
#
#   scripts/static_analysis.sh          # full gate (fmt, clippy, verify, proptests)
#   scripts/static_analysis.sh --quick  # skip the proptest suites
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

step "cargo clippy (telemetry feature) -- -D warnings"
cargo clippy -q -p pstore-bench -p pstore-sim --all-targets \
    --features telemetry -- -D warnings

step "pstore-verify invariant sweep"
cargo run -q --release -p pstore-verify

step "telemetry smoke: traced run + pstore-trace validation"
TRACE_FILE="$(mktemp /tmp/pstore-smoke.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_FILE"' EXIT
cargo run -q --release -p pstore-bench --features telemetry \
    --bin telemetry_smoke -- --quiet --trace "$TRACE_FILE"
# pstore-trace exits 1 on parse errors or unmatched spans (TEL-01/02).
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- "$TRACE_FILE"

if [[ "$QUICK" == "0" ]]; then
    step "property-test suites"
    cargo test -q -p pstore-verify --tests
    step "pstore-sim tests with telemetry feature"
    cargo test -q -p pstore-sim --features telemetry
fi

echo
echo "static analysis: all checks passed"
