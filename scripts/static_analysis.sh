#!/usr/bin/env bash
# Static-analysis gate for the workspace. Run from the repository root.
#
#   scripts/static_analysis.sh          # full gate (fmt, clippy, verify, proptests)
#   scripts/static_analysis.sh --quick  # skip the proptest suites
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

step "pstore-verify invariant sweep"
cargo run -q --release -p pstore-verify

if [[ "$QUICK" == "0" ]]; then
    step "property-test suites"
    cargo test -q -p pstore-verify --tests
fi

echo
echo "static analysis: all checks passed"
