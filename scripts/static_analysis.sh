#!/usr/bin/env bash
# Static-analysis gate for the workspace. Run from the repository root.
#
#   scripts/static_analysis.sh          # full gate (fmt, clippy, verify, proptests)
#   scripts/static_analysis.sh --quick  # skip the proptest suites
#
# Every step must pass; the script stops at the first failure.
#
# Runtime sanitizers (TSan/ASan over the thread-bearing crates) live in
# scripts/sanitizers.sh — separate because they need a nightly toolchain
# with rust-src and rebuild std, which is too slow for this gate.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

step "cargo clippy (telemetry feature) -- -D warnings"
cargo clippy -q -p pstore-bench -p pstore-sim --all-targets \
    --features telemetry -- -D warnings

step "pstore-lint: project-specific static analysis (SA-01..07)"
# Source-level rules clippy cannot express: invariant-registry coherence,
# telemetry kind/span discipline, determinism, concurrency hygiene,
# SAFETY comments, #[allow] justifications, dbms sync-shim routing. See
# docs/static_analysis.md.
cargo run -q --release -p pstore-lint

step "pstore-verify invariant sweep (incl. sharded engine at shards 1 and 4)"
# The telemetry feature arms the sharded-sim stream comparison: serial
# and threaded backends must emit identical telemetry after span-id
# renumbering, checked by every TEL/TXN checker on both streams.
cargo run -q --release -p pstore-verify --features telemetry

step "microbenchmarks compile (cargo bench --no-run)"
cargo bench -q --no-run

step "perf baseline smoke + sweep determinism (--threads 1 vs 2, shards 1 vs 4)"
BENCH_T1="$(mktemp /tmp/pstore-bench-t1.XXXXXX.json)"
BENCH_T2="$(mktemp /tmp/pstore-bench-t2.XXXXXX.json)"
# The shards=1 row is also gated against the committed baseline: the
# serial engine must keep >= 95% of BENCH_sim.json's throughput.
cargo run -q --release -p pstore-bench --bin bench_baseline -- \
    --quick --threads 1 --shards 1,4 --quiet --out "$BENCH_T1" \
    --check-against BENCH_sim.json > /dev/null
cargo run -q --release -p pstore-bench --bin bench_baseline -- \
    --quick --threads 2 --shards 1,4 --quiet --out "$BENCH_T2" > /dev/null
# Timing fields legitimately differ; the simulation counters must not —
# neither across thread counts nor across the per-shard-count rows.
diff <(grep -E 'committed_txns|dropped_txns|"cells"' "$BENCH_T1") \
     <(grep -E 'committed_txns|dropped_txns|"cells"' "$BENCH_T2")
rm -f "$BENCH_T1" "$BENCH_T2"

step "telemetry smoke: traced run + live exposition + pstore-trace validation"
TRACE_FILE="$(mktemp /tmp/pstore-smoke.XXXXXX.jsonl)"
SMOKE_SUMMARY="$(mktemp /tmp/pstore-smoke.XXXXXX.summary.json)"
trap 'rm -f "$TRACE_FILE" "$SMOKE_SUMMARY"' EXIT
# --expose-metrics 0 serves live Prometheus text on an ephemeral port;
# the smoke binary scrapes itself once and asserts the format.
cargo run -q --release -p pstore-bench --features telemetry \
    --bin telemetry_smoke -- --quiet --trace "$TRACE_FILE" \
    --summary "$SMOKE_SUMMARY" --expose-metrics 0
# pstore-trace exits 1 on parse errors, unmatched spans, or ordering
# violations (TEL-01/02/04).
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- report "$TRACE_FILE"
# The profiler, timeline, and slo attribution must all render the trace.
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    profile "$TRACE_FILE" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    timeline "$TRACE_FILE" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    slo "$TRACE_FILE" > /dev/null
# A run diffed against its own summary must be clean.
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    diff "$SMOKE_SUMMARY" "$TRACE_FILE"

step "trace-diff regression gate vs results/golden/ (two --quick runs)"
GOLDEN_TMP="$(mktemp -d /tmp/pstore-golden.XXXXXX)"
cargo run -q --release -p pstore-bench --features telemetry \
    --bin fig9_comparison -- --quick --quiet \
    --trace "$GOLDEN_TMP/fig9_quick.jsonl" \
    --summary "$GOLDEN_TMP/fig9_quick.summary.json" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    diff results/golden/fig9_quick.summary.json "$GOLDEN_TMP/fig9_quick.summary.json"
# SLA attribution: the slo report must render, and its slo.* metrics must
# match the committed golden (reactive blows the SLA during chunk moves,
# P-Store does not — the paper's headline, regression-gated).
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    slo "$GOLDEN_TMP/fig9_quick.jsonl" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    diff results/golden/fig9_slo_quick.summary.json "$GOLDEN_TMP/fig9_quick.summary.json"
cargo run -q --release -p pstore-bench --features telemetry \
    --bin table2_sla -- --quick --quiet \
    --summary "$GOLDEN_TMP/table2_quick.summary.json" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    diff results/golden/table2_quick.summary.json "$GOLDEN_TMP/table2_quick.summary.json"
# Provisioning observatory: the same quick workload with the prov_*
# family enabled (the default run above stays byte-stable because
# emission is gated). Reactive must under-provision, P-Store must not;
# gated via the prov.* metrics in the committed golden.
PSTORE_PROV_EVENTS=1 cargo run -q --release -p pstore-bench --features telemetry \
    --bin fig9_comparison -- --quick --quiet \
    --trace "$GOLDEN_TMP/fig9_prov_quick.jsonl" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    provisioning "$GOLDEN_TMP/fig9_prov_quick.jsonl" \
    --summary "$GOLDEN_TMP/fig9_prov_quick.summary.json" > /dev/null
cargo run -q --release -p pstore-telemetry --bin pstore-trace -- \
    diff results/golden/fig9_prov_quick.summary.json "$GOLDEN_TMP/fig9_prov_quick.summary.json"
rm -rf "$GOLDEN_TMP"

if [[ "$QUICK" == "0" ]]; then
    step "property-test suites"
    cargo test -q -p pstore-verify --tests
    step "pstore-sim tests with telemetry feature"
    cargo test -q -p pstore-sim --features telemetry
    step "loom model checking: thread-pool concurrency invariants (CON-01..03)"
    # Exhaustively explores the pool's interleavings with its primitives
    # swapped to the vendored loom types (see docs/invariants.md).
    RUSTFLAGS="--cfg loom" cargo test -q -p rayon --release
    step "loom model checking: sharded-engine invariants (CON-04..05)"
    # Mailbox handoff and reconfig fence, with should_panic seeded-bug
    # twins; the dbms crate's sync shim swaps to loom types here.
    RUSTFLAGS="--cfg loom" cargo test -q -p pstore-dbms --release --test loom_models
    if cargo miri --version > /dev/null 2>&1; then
        step "cargo miri test: UB check on core crates + dbms engine"
        cargo miri test -q -p pstore-core -p pstore-forecast -p pstore-dbms
        step "cargo miri test: telemetry unit tests"
        # Lib tests only: the trace_cli integration test spawns the
        # pstore-trace binary (unsupported under miri) and the proptest
        # suite is impractically slow there. Socket/file-I/O unit tests
        # carry #[cfg_attr(miri, ignore)].
        cargo miri test -q -p pstore-telemetry --lib
        step "cargo miri test: verify checker unit tests"
        # Lib tests only: the pure checker logic (ISO-01..03 DSG
        # construction and cycle detection included). The runtime
        # sweeps that spawn threads and run full simulations carry
        # #[cfg_attr(miri, ignore)].
        cargo miri test -q -p pstore-verify --lib
    else
        step "cargo miri test: skipped (miri not installed on this toolchain)"
    fi
    step "fig9 serial-vs-parallel determinism (release, ~4 min)"
    cargo test -q --release -p pstore-bench --test sweep_determinism \
        -- --ignored
fi

echo
echo "static analysis: all checks passed"
