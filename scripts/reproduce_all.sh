#!/usr/bin/env bash
# Regenerates every table and figure of the paper (plus the extension
# experiments) into results/. Full runs; pass --quick to every binary by
# exporting QUICK=--quick.
set -euo pipefail
cd "$(dirname "$0")/.."
QUICK="${QUICK:-}"
mkdir -p results

BINS=(
  fig1_load fig2_step_capacity fig3_dp_goal fig4_eff_cap table1_schedule
  fig5_spar_b2w fig6_spar_wikipedia fig7_saturation fig8_chunk_size
  fig9_comparison fig11_spike fig12_capacity_cost fig13_black_friday
  table0_uniformity ablations model_comparison wiki_provisioning
)

cargo build --release -p pstore-bench --bins

for bin in "${BINS[@]}"; do
  echo "== $bin"
  cargo run --release -q -p pstore-bench --bin "$bin" -- $QUICK \
    > "results/$bin.txt"
done

# fig10 and table2 share fig9's runs; their data is inside
# results/fig9_comparison.txt. Run the standalone binaries only on request:
#   cargo run --release -p pstore-bench --bin fig10_latency_cdf
#   cargo run --release -p pstore-bench --bin table2_sla

echo "all outputs written to results/"
