//! `pstore` — a command-line front end to the P-Store reproduction.
//!
//! ```text
//! pstore forecast [--days N] [--tau MIN] [--seed S]
//!     Fit SPAR on synthetic B2W load and report accuracy.
//!
//! pstore plan --load L1,L2,... [--start N] [--q Q] [--d-intervals D]
//!             [--partitions P] [--max M]
//!     Run the predictive-elasticity dynamic program on a load curve.
//!
//! pstore schedule B A
//!     Print the §4.4.1 migration round schedule for a move.
//!
//! pstore simulate [--days N] [--strategy pstore|oracle|reactive|static:N|simple]
//!                 [--seed S]
//!     Long-horizon slot simulation of an allocation strategy.
//! ```

use pstore::core::controller::baselines::StaticController;
use pstore::core::params::SystemParams;
use pstore::core::planner::{Planner, PlannerConfig};
use pstore::core::schedule::MigrationSchedule;
use pstore::forecast::eval::{rolling_accuracy, EvalConfig};
use pstore::forecast::generators::B2wLoadModel;
use pstore::forecast::spar::{SparConfig, SparModel};
use pstore::sim::fast::{run_fast, FastSimConfig};
use pstore::sim::scenarios::{
    pstore_oracle_fast, pstore_spar_fast, reactive_fast, simple_schedule, PEAK_TXN_RATE,
    TRAINING_DAYS,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "forecast" => cmd_forecast(rest),
        "plan" => cmd_plan(rest),
        "schedule" => cmd_schedule(rest),
        "simulate" => cmd_simulate(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: pstore <forecast|plan|schedule|simulate> [options]
  forecast  [--days N] [--tau MIN] [--seed S]
  plan      --load L1,L2,... [--start N] [--q Q] [--d-intervals D] [--partitions P] [--max M]
  schedule  <B> <A>
  simulate  [--days N] [--strategy pstore|oracle|reactive|static:N|simple] [--seed S]";

/// Parses `--key value` style flags; returns an error for unknown keys.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found `{}`", args[i]))?;
        if !allowed.contains(&key) {
            return Err(format!("unknown flag --{key}"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        out.push((key, value.as_str()));
        i += 2;
    }
    Ok(out)
}

fn get_flag<'a>(flags: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad {what} `{s}`: {e}"))
}

fn cmd_forecast(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["days", "tau", "seed"])?;
    let eval_days: usize = parse_num(get_flag(&flags, "days").unwrap_or("7"), "--days")?;
    let tau: usize = parse_num(get_flag(&flags, "tau").unwrap_or("60"), "--tau")?;
    let seed: u64 = parse_num(get_flag(&flags, "seed").unwrap_or("42"), "--seed")?;
    if tau == 0 || tau > 1440 {
        return Err("--tau must be in 1..=1440 minutes".into());
    }

    let train_days = 28;
    let load = B2wLoadModel {
        seed,
        ..B2wLoadModel::default()
    }
    .generate(train_days + eval_days.max(1));
    let train_len = train_days * 1440;
    let model = SparModel::fit(&load.values()[..train_len], &SparConfig::b2w_default())
        .map_err(|e| e.to_string())?;
    let acc = rolling_accuracy(
        &model,
        load.values(),
        &[tau],
        &EvalConfig {
            eval_start: train_len,
            origin_stride: 17,
        },
    );
    println!(
        "SPAR on {eval_days} held-out day(s), tau = {tau} min: MRE {:.1}% \
         (MAE {:.0}, RMSE {:.0}, {} samples)",
        100.0 * acc[0].mre,
        acc[0].mae,
        acc[0].rmse,
        acc[0].samples
    );
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &["load", "start", "q", "d-intervals", "partitions", "max"],
    )?;
    let load_str = get_flag(&flags, "load").ok_or("--load is required (comma-separated)")?;
    let load: Vec<f64> = load_str
        .split(',')
        .map(|s| parse_num(s.trim(), "load value"))
        .collect::<Result<_, _>>()?;
    if load.is_empty() {
        return Err("--load needs at least one value".into());
    }
    let start: u32 = parse_num(get_flag(&flags, "start").unwrap_or("2"), "--start")?;
    let q: f64 = parse_num(get_flag(&flags, "q").unwrap_or("285"), "--q")?;
    let d_intervals: f64 = parse_num(
        get_flag(&flags, "d-intervals").unwrap_or("15.5"),
        "--d-intervals",
    )?;
    let partitions: u32 = parse_num(
        get_flag(&flags, "partitions").unwrap_or("6"),
        "--partitions",
    )?;
    let max: u32 = parse_num(get_flag(&flags, "max").unwrap_or("10"), "--max")?;

    let planner = Planner::new(PlannerConfig {
        q,
        d_intervals,
        partitions_per_node: partitions,
        max_machines: max,
    });
    match planner.best_moves(&load, start) {
        Some(plan) => {
            println!(
                "optimal plan from {start} machines over {} intervals:",
                load.len() - 1
            );
            for m in plan.moves() {
                println!("  {m}");
            }
            println!("final machines: {}", plan.final_machines().unwrap_or(start));
        }
        None => {
            let peak = load.iter().copied().fold(0.0, f64::max);
            println!(
                "no feasible plan: the cluster cannot scale fast enough \
                 (peak {peak:.0} needs {} machines at Q = {q:.0}; emergency \
                 scale-out would be required)",
                planner.machines_needed(peak)
            );
        }
    }
    Ok(())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let [b, a] = args else {
        return Err("usage: pstore schedule <B> <A>".into());
    };
    let b: u32 = parse_num(b, "B")?;
    let a: u32 = parse_num(a, "A")?;
    if b == 0 || a == 0 {
        return Err("machine counts must be positive".into());
    }
    let schedule = MigrationSchedule::plan(b, a);
    println!(
        "move {b} -> {a}: {} rounds, {} pair transfers, avg {:.3} machines",
        schedule.total_rounds(),
        schedule.total_transfers(),
        schedule.avg_machines()
    );
    for (i, round) in schedule.rounds().iter().enumerate() {
        let pairs: Vec<String> = round
            .transfers
            .iter()
            .map(|t| format!("{}->{}", t.from, t.to))
            .collect();
        println!(
            "  round {i:>2} [{} machines]: {}",
            schedule.machines_in_round(i),
            pairs.join(" ")
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["days", "strategy", "seed"])?;
    let days: usize = parse_num(get_flag(&flags, "days").unwrap_or("14"), "--days")?;
    let strategy = get_flag(&flags, "strategy").unwrap_or("pstore");
    let seed: u64 = parse_num(get_flag(&flags, "seed").unwrap_or("42"), "--seed")?;
    if days == 0 {
        return Err("--days must be positive".into());
    }

    let raw = B2wLoadModel {
        seed,
        ..B2wLoadModel::default()
    }
    .generate(TRAINING_DAYS + days);
    let eval_start = TRAINING_DAYS * 1440;
    let peak = raw.values()[eval_start..]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / peak);
    let train = &scaled.values()[..eval_start];
    let eval = &scaled.values()[eval_start..];

    let params = SystemParams::b2w_paper();
    let cfg = FastSimConfig {
        params: params.clone(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: false,
        prov_events: false,
    };

    let r = match strategy {
        "pstore" => run_fast(
            &cfg,
            eval,
            &mut pstore_spar_fast(train, eval[0], &params, params.q),
        ),
        "oracle" => run_fast(&cfg, eval, &mut pstore_oracle_fast(eval, &params, params.q)),
        "reactive" => run_fast(&cfg, eval, &mut reactive_fast(eval[0], &params, 0.10)),
        "simple" => run_fast(&cfg, eval, &mut simple_schedule(8, 3)),
        other => {
            if let Some(n) = other.strip_prefix("static:") {
                let n: u32 = parse_num(n, "static machine count")?;
                run_fast(&cfg, eval, &mut StaticController::new(n.clamp(1, 10)))
            } else {
                return Err(format!(
                    "unknown strategy `{other}` (pstore|oracle|reactive|static:N|simple)"
                ));
            }
        }
    };
    println!("strategy        : {}", r.strategy);
    println!("simulated       : {days} day(s), peak {PEAK_TXN_RATE:.0} txn/s");
    println!("avg machines    : {:.2}", r.avg_machines());
    println!("% time short    : {:.3}", r.pct_insufficient());
    println!("reconfigurations: {}", r.reconfigurations);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing_accepts_allowed_and_rejects_unknown() {
        let args = s(&["--days", "3", "--seed", "7"]);
        let flags = parse_flags(&args, &["days", "seed"]).unwrap();
        assert_eq!(get_flag(&flags, "days"), Some("3"));
        assert_eq!(get_flag(&flags, "seed"), Some("7"));
        assert!(parse_flags(&args, &["days"]).is_err());
        assert!(parse_flags(&s(&["--days"]), &["days"]).is_err());
        assert!(parse_flags(&s(&["days", "3"]), &["days"]).is_err());
    }

    #[test]
    fn plan_command_round_trips() {
        cmd_plan(&s(&[
            "--load",
            "150,150,400,400",
            "--start",
            "2",
            "--q",
            "100",
            "--max",
            "8",
        ]))
        .unwrap();
        assert!(cmd_plan(&s(&[])).is_err()); // --load required
        assert!(cmd_plan(&s(&["--load", "1,x"])).is_err());
    }

    #[test]
    fn schedule_command_validates() {
        cmd_schedule(&s(&["3", "14"])).unwrap();
        assert!(cmd_schedule(&s(&["3"])).is_err());
        assert!(cmd_schedule(&s(&["0", "4"])).is_err());
    }

    #[test]
    fn simulate_rejects_unknown_strategy() {
        assert!(cmd_simulate(&s(&["--strategy", "nonsense", "--days", "1"])).is_err());
    }
}
