//! P-Store: an elastic OLTP database system with predictive provisioning.
//!
//! This facade crate re-exports the whole reproduction of the SIGMOD 2018
//! paper:
//!
//! * [`forecast`] — SPAR / AR / ARMA load prediction and synthetic traces.
//! * [`core`] — the predictive-elasticity planner, migration cost model,
//!   schedules, and provisioning controllers (the paper's contribution).
//! * [`dbms`] — the H-Store-like partitioned engine with live migration.
//! * [`b2w`] — the B2W online-retail benchmark.
//! * [`sim`] — the detailed and slot-based simulators that regenerate the
//!   paper's evaluation.

#![warn(missing_docs)]

pub use pstore_b2w as b2w;
pub use pstore_core as core;
pub use pstore_dbms as dbms;
pub use pstore_forecast as forecast;
pub use pstore_sim as sim;

/// The types most programs need, in one import.
///
/// ```
/// use pstore::prelude::*;
/// let planner = Planner::new(PlannerConfig {
///     q: 285.0, d_intervals: 15.5, partitions_per_node: 6, max_machines: 10,
/// });
/// assert!(planner.best_moves(&[400.0, 500.0, 600.0], 2).is_some());
/// ```
pub mod prelude {
    pub use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
    pub use pstore_core::controller::{
        Action, LoadForecaster, Observation, OracleForecaster, ReactiveController, SparForecaster,
        Strategy,
    };
    pub use pstore_core::params::SystemParams;
    pub use pstore_core::planner::{Planner, PlannerConfig};
    pub use pstore_core::schedule::MigrationSchedule;
    pub use pstore_dbms::cluster::{Cluster, ClusterConfig};
    pub use pstore_forecast::model::LoadPredictor;
    pub use pstore_forecast::spar::{SparConfig, SparModel};
    pub use pstore_forecast::TimeSeries;
    pub use pstore_sim::detailed::{run_detailed, DetailedSimConfig};
    pub use pstore_sim::fast::{run_fast, FastSimConfig};
}
