//! Cross-crate consistency: the engine must preserve benchmark invariants
//! through arbitrary live reconfigurations under traffic.

#![allow(clippy::expect_used, clippy::unwrap_used)] // test helpers abort loudly on harness failures
use pstore::b2w::generator::{WorkloadConfig, WorkloadGenerator};
use pstore::b2w::procedures::GetStock;
use pstore::b2w::schema::{b2w_catalog, tables};
use pstore::dbms::cluster::{Cluster, ClusterConfig};
use pstore::dbms::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
use pstore::dbms::value::{Key, KeyValue, Value};

fn seeded_cluster(nodes: u32, skus: usize, carts: usize) -> (Cluster, WorkloadGenerator) {
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        seed: 0xC0C0,
        num_skus: skus,
        initial_carts: carts,
        ..WorkloadConfig::default()
    });
    let mut cluster = Cluster::new(
        b2w_catalog(),
        ClusterConfig {
            partitions_per_node: 4,
            num_slots: 1_600,
        },
        nodes,
    );
    for p in gen.seed_stock_procedures() {
        cluster.execute(&p).unwrap();
    }
    for t in gen.initial_load() {
        cluster.execute(&t).unwrap();
    }
    (cluster, gen)
}

/// Sums available + reserved + purchased for one SKU.
fn stock_units(cluster: &mut Cluster, sku: &str) -> i64 {
    let TxnOutput::Row(row) = cluster
        .execute(&GetStock { sku: sku.into() })
        .unwrap_or_else(|e| panic!("stock row for {sku} lost: {e}"))
    else {
        panic!("expected a row");
    };
    row.0[1].as_int().unwrap() + row.0[2].as_int().unwrap() + row.0[3].as_int().unwrap()
}

#[test]
fn stock_units_are_conserved_through_migrations_under_traffic() {
    let (mut cluster, mut gen) = seeded_cluster(2, 300, 100);
    // Stock conservation: reserve/purchase/cancel only move units between
    // the three columns; migration must never duplicate or lose them.
    let probe: Vec<String> = gen
        .seed_stock_procedures()
        .iter()
        .step_by(37)
        .map(|p| p.sku.clone())
        .collect();
    let before: Vec<i64> = probe.iter().map(|s| stock_units(&mut cluster, s)).collect();

    for target in [5u32, 3, 7, 2] {
        cluster.begin_reconfiguration(target).unwrap();
        let mut i = 0usize;
        while cluster.reconfiguring() {
            let pairs = cluster.pair_transfers().len();
            let _ = cluster.migrate_chunk(i % pairs, 4_096).unwrap();
            for _ in 0..10 {
                let t = gen.next_txn();
                let _ = cluster.execute(&t);
            }
            i += 1;
            assert!(i < 1_000_000, "migration did not converge");
        }
        assert_eq!(cluster.active_nodes(), target);
    }

    let after: Vec<i64> = probe.iter().map(|s| stock_units(&mut cluster, s)).collect();
    assert_eq!(before, after, "stock units changed across migrations");
}

#[test]
fn cart_totals_stay_consistent_with_their_lines() {
    let (mut cluster, mut gen) = seeded_cluster(3, 200, 150);
    for _ in 0..20_000 {
        let t = gen.next_txn();
        let _ = cluster.execute(&t);
    }
    // Audit every open cart on every node: the cart's total must equal the
    // sum over its lines of quantity * unit price.
    struct AuditCart {
        cart_id: String,
    }
    impl Procedure for AuditCart {
        fn name(&self) -> &'static str {
            "AuditCart"
        }
        fn routing_key(&self) -> KeyValue {
            KeyValue::Str(self.cart_id.clone())
        }
        fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
            let key = Key::str(self.cart_id.clone());
            let cart = ctx.get_required(tables::CART, "CART", &key)?;
            let total = match cart.0[3] {
                Value::Float(t) => t,
                _ => 0.0,
            };
            let lines = ctx.scan_prefix(tables::CART_LINE, &key);
            let sum: f64 = lines
                .iter()
                .map(|(_, l)| {
                    let q = l.0[3].as_int().unwrap_or(0) as f64;
                    match l.0[4] {
                        Value::Float(p) => q * p,
                        _ => 0.0,
                    }
                })
                .sum();
            if (total - sum).abs() > 1e-6 {
                return Err(TxnError::Aborted(format!(
                    "cart {} total {total} != line sum {sum}",
                    self.cart_id
                )));
            }
            Ok(TxnOutput::Count(lines.len() as u64))
        }
    }

    // Collect cart ids via a full scan at the storage layer: re-run the
    // generator's stream a little and audit the carts it touches.
    let mut audited = 0;
    for _ in 0..5_000 {
        let t = gen.next_txn();
        if let pstore::b2w::B2wTxn::GetCart(g) = &t {
            let audit = AuditCart {
                cart_id: g.cart_id.clone(),
            };
            match cluster.execute(&audit) {
                Ok(_) => audited += 1,
                Err(TxnError::NotFound { .. }) => {}
                Err(e) => panic!("cart audit failed: {e}"),
            }
        }
        let _ = cluster.execute(&t);
    }
    assert!(audited > 50, "audited only {audited} carts");
}

#[test]
fn migration_preserves_row_and_byte_totals_without_traffic() {
    let (mut cluster, _) = seeded_cluster(4, 500, 200);
    let rows = cluster.total_rows();
    let bytes = cluster.total_bytes();
    for target in [9u32, 1, 6] {
        cluster.begin_reconfiguration(target).unwrap();
        cluster.run_reconfiguration_to_completion(8_192).unwrap();
        assert_eq!(cluster.total_rows(), rows);
        assert_eq!(cluster.total_bytes(), bytes);
    }
}
