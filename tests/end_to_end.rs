//! End-to-end integration: predictor + planner + controller + engine +
//! benchmark, exercised together through the detailed simulator.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::float_cmp)] // test helpers abort loudly; exact-value asserts
use pstore::core::controller::baselines::StaticController;
use pstore::core::params::SystemParams;
use pstore::sim::detailed::{run_detailed, DetailedSimConfig};
use pstore::sim::scenarios::{pstore_oracle, pstore_spar, reactive_default, ExperimentTrace};

/// A small, fast configuration over a compressed half-day window.
fn small_cfg(trace: &ExperimentTrace, seconds: usize) -> DetailedSimConfig {
    let mut cfg = DetailedSimConfig::paper_defaults(trace.wall_seconds[..seconds].to_vec(), 0xE2E);
    cfg.workload.num_skus = 1_500;
    cfg.workload.initial_carts = 400;
    cfg.num_slots = 3_600;
    cfg.warmup_txns = 30_000;
    cfg
}

#[test]
fn pstore_spar_runs_a_compressed_window_cleanly() {
    let trace = ExperimentTrace::b2w(1, 11);
    let params = SystemParams::b2w_paper();
    // Run midnight to noon (the overnight trough plus the morning ramp,
    // the hardest stretch of the day for provisioning). Forecasters are
    // phase-aligned to the start of the evaluation window, so simulated
    // windows must start there too.
    let hi = 12 * 360;
    let cfg = small_cfg(&trace, hi);

    let mut controller = pstore_spar(&trace, &params);
    let r = run_detailed(&cfg, &mut controller);

    // The controller must have scaled out during the ramp.
    assert!(
        !r.reconfig_spans.is_empty(),
        "no reconfigurations over the morning ramp"
    );
    let start_m = r.seconds.first().unwrap().machines;
    let end_m = r.seconds.last().unwrap().machines;
    assert!(
        end_m > start_m,
        "machines should grow across the ramp: {start_m} -> {end_m}"
    );
    // Transactions flow throughout and violations stay rare.
    assert!(r.committed > 100_000, "committed only {}", r.committed);
    let bad_fraction = r.violations.p99 as f64 / r.seconds.len() as f64;
    assert!(
        bad_fraction < 0.05,
        "p99 violations in {:.1}% of seconds",
        bad_fraction * 100.0
    );
}

#[test]
fn predictive_beats_reactive_on_the_same_morning() {
    let trace = ExperimentTrace::b2w(1, 5);
    let params = SystemParams::b2w_paper();
    let hi = 13 * 360;
    let run = |strategy: &mut dyn pstore::core::controller::Strategy| {
        let cfg = small_cfg(&trace, hi);
        run_detailed(&cfg, strategy)
    };
    let p = run(&mut pstore_oracle(&trace, &params));
    let r = run(&mut reactive_default(&trace, &params));
    assert!(
        p.violations.p99 <= r.violations.p99,
        "P-Store (oracle) {} violations vs reactive {}",
        p.violations.p99,
        r.violations.p99
    );
}

#[test]
fn static_peak_has_no_violations_but_wastes_machines() {
    let trace = ExperimentTrace::b2w(1, 9);
    let hi = 8 * 360;
    let cfg = small_cfg(&trace, hi);
    let r = run_detailed(&cfg, &mut StaticController::new(10));
    assert_eq!(r.violations.p99, 0, "{:?}", r.violations);
    assert_eq!(r.avg_machines, 10.0);
    assert!(r.reconfig_spans.is_empty());
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let trace = ExperimentTrace::b2w(1, 3);
    let hi = 4 * 360;
    let run = || {
        let cfg = small_cfg(&trace, hi);
        let params = SystemParams::b2w_paper();
        let mut c = pstore_spar(&trace, &params);
        run_detailed(&cfg, &mut c)
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.reconfig_spans, b.reconfig_spans);
}
