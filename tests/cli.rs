//! End-to-end tests of the `pstore` CLI binary.
#![allow(clippy::expect_used)] // test helpers abort loudly on harness failures

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pstore"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn schedule_prints_the_table1_move() {
    let (ok, stdout, _) = run(&["schedule", "3", "14"]);
    assert!(ok);
    assert!(stdout.contains("11 rounds"));
    assert!(stdout.contains("33 pair transfers"));
    assert!(stdout.contains("avg 10.091 machines"));
}

#[test]
fn plan_produces_a_feasible_plan_or_explains_why_not() {
    let (ok, stdout, _) = run(&[
        "plan",
        "--load",
        "150,150,380,380,120",
        "--start",
        "2",
        "--q",
        "100",
        "--d-intervals",
        "2",
        "--partitions",
        "2",
        "--max",
        "8",
    ]);
    assert!(ok);
    assert!(stdout.contains("optimal plan"));
    assert!(stdout.contains("final machines"));

    // An impossible jump reports the emergency path instead of failing.
    let (ok, stdout, _) = run(&[
        "plan", "--load", "150,5000", "--start", "1", "--q", "100", "--max", "4",
    ]);
    assert!(ok);
    assert!(stdout.contains("no feasible plan"));
}

#[test]
fn bad_arguments_fail_with_a_message() {
    let (ok, _, stderr) = run(&["plan"]);
    assert!(!ok);
    assert!(stderr.contains("--load"));

    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&["schedule", "0", "3"]);
    assert!(!ok);
    assert!(stderr.contains("positive"));
}

#[test]
fn simulate_runs_a_static_strategy_quickly() {
    let (ok, stdout, _) = run(&["simulate", "--days", "1", "--strategy", "static:6"]);
    assert!(ok);
    assert!(stdout.contains("avg machines"));
    assert!(stdout.contains("6.00"));
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage: pstore"));
}
