//! Long-horizon strategy ordering: the Fig 12 relationships must hold on
//! the fast simulator over a synthetic month.

#![allow(clippy::expect_used, clippy::unwrap_used)] // test helpers abort loudly on harness failures
use pstore::core::params::SystemParams;
use pstore::forecast::generators::B2wLoadModel;
use pstore::sim::fast::{run_fast, FastSimConfig, FastSimResult};
use pstore::sim::scenarios::{
    pstore_oracle_fast, pstore_spar_fast, reactive_fast, simple_schedule, static_alloc,
    PEAK_TXN_RATE, TRAINING_DAYS,
};

struct Setup {
    cfg: FastSimConfig,
    train: Vec<f64>,
    eval: Vec<f64>,
    params: SystemParams,
}

fn setup(eval_days: usize, seed: u64) -> Setup {
    let raw = B2wLoadModel {
        seed,
        ..B2wLoadModel::default()
    }
    .generate(TRAINING_DAYS + eval_days);
    let eval_start = TRAINING_DAYS * 1440;
    let peak = raw.values()[eval_start..]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / peak);
    let params = SystemParams::b2w_paper();
    Setup {
        cfg: FastSimConfig {
            params: params.clone(),
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: false,
            prov_events: false,
        },
        train: scaled.values()[..eval_start].to_vec(),
        eval: scaled.values()[eval_start..].to_vec(),
        params,
    }
}

#[test]
fn pstore_halves_machines_versus_peak_static_with_little_shortfall() {
    let s = setup(28, 0x51);
    let pstore = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_spar_fast(&s.train, s.eval[0], &s.params, s.params.q),
    );
    let static10 = run_fast(&s.cfg, &s.eval, &mut static_alloc(10));
    assert!(
        pstore.avg_machines() < 0.6 * static10.avg_machines(),
        "P-Store {:.2} machines vs static {:.2}",
        pstore.avg_machines(),
        static10.avg_machines()
    );
    assert!(
        pstore.pct_insufficient() < 0.5,
        "P-Store short {:.3}% of the time",
        pstore.pct_insufficient()
    );
}

#[test]
fn oracle_is_at_least_as_good_as_spar() {
    let s = setup(21, 0x52);
    let spar = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_spar_fast(&s.train, s.eval[0], &s.params, s.params.q),
    );
    let oracle = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_oracle_fast(&s.eval, &s.params, s.params.q),
    );
    assert!(
        oracle.insufficient_slots <= spar.insufficient_slots + 5,
        "oracle {} short slots vs SPAR {}",
        oracle.insufficient_slots,
        spar.insufficient_slots
    );
}

#[test]
fn reactive_is_short_more_often_than_pstore_at_comparable_cost() {
    let s = setup(21, 0x53);
    let pstore = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_spar_fast(&s.train, s.eval[0], &s.params, s.params.q),
    );
    let reactive = run_fast(
        &s.cfg,
        &s.eval,
        &mut reactive_fast(s.eval[0], &s.params, 0.10),
    );
    assert!(
        reactive.insufficient_slots > pstore.insufficient_slots,
        "reactive {} vs pstore {}",
        reactive.insufficient_slots,
        pstore.insufficient_slots
    );
    // Reactive's machine usage is in the same ballpark (it is not buying
    // its shortfall advantage with a bigger cluster).
    assert!(reactive.avg_machines() < pstore.avg_machines() * 1.3);
}

#[test]
fn simple_schedule_fails_on_out_of_pattern_days() {
    let mut s = setup(21, 0x54);
    // Inject a surge on eval day 10, large enough to exceed the fixed
    // schedule's day capacity (8 machines x Q̂ = 2 800 txn/s) while still
    // being servable at the 10-machine hardware limit.
    for v in &mut s.eval[10 * 1440..11 * 1440] {
        *v *= 2.0;
    }
    let simple = run_fast(&s.cfg, &s.eval, &mut simple_schedule(8, 3));
    let pstore = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_spar_fast(&s.train, s.eval[0], &s.params, s.params.q),
    );
    let day_short = |r: &FastSimResult, day: usize| {
        // record_timeline is off; recompute via a per-day re-run would be
        // costly, so compare whole-run shortfall instead.
        let _ = day;
        r.insufficient_slots
    };
    assert!(
        day_short(&simple, 10) > day_short(&pstore, 10),
        "simple {} short slots vs pstore {}",
        simple.insufficient_slots,
        pstore.insufficient_slots
    );
}

#[test]
fn lowering_q_buys_headroom_with_more_machines() {
    let s = setup(14, 0x55);
    let tight = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_oracle_fast(&s.eval, &s.params, 335.0),
    );
    let loose = run_fast(
        &s.cfg,
        &s.eval,
        &mut pstore_oracle_fast(&s.eval, &s.params, 220.0),
    );
    assert!(loose.avg_machines() > tight.avg_machines());
    assert!(loose.insufficient_slots <= tight.insufficient_slots);
}
